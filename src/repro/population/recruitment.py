"""Recruitment: build the per-campaign participant panel (§2, Tables 1-2).

Each campaign recruited an independent panel in proportion to carrier market
share, with the Table 2 occupation mix, plus a small number of non-recruited
users who installed the app from the stores. Year-over-year behavioural
shifts (home-AP ownership, WiFi policy, public-WiFi enrollment) are expressed
as :class:`RecruitmentConfig` parameters.

WiFi policy is conditioned on home-AP ownership: nearly everyone who owns a
home router uses it (Table 8: ~70-78% connect at home), so the off/no-config
population concentrates among non-owners.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.apps.demand import DemandModel
from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate
from repro.geo.places import PLACES
from repro.net.cellular import assign_technology, pick_carrier
from repro.population.demographics import Occupation, sample_occupation
from repro.population.profiles import UserProfile, WifiPolicy
from repro.traces.records import DeviceOS

#: Residential anchors and weights: homes scatter around the whole region.
_HOME_ANCHORS = (
    ("saitama", 0.14), ("chiba", 0.12), ("yokohama", 0.16), ("kawasaki", 0.10),
    ("funabashi", 0.10), ("hachioji", 0.09), ("tokyo", 0.15),
    ("odawara", 0.05), ("yokosuka", 0.05), ("narita", 0.04),
)

#: Office anchors: strongly downtown (Shinjuku/Shibuya/Tokyo).
_OFFICE_ANCHORS = (
    ("shinjuku", 0.30), ("shibuya", 0.22), ("tokyo", 0.28),
    ("yokohama", 0.12), ("kawasaki", 0.08),
)

PolicyMix = Dict[WifiPolicy, float]


@dataclass
class RecruitmentConfig:
    """Panel composition for one campaign year."""

    year: int
    n_android: int
    n_ios: int
    lte_share: float
    home_ap_share: float
    office_ap_share: float = 0.12
    public_enrolled_share: float = 0.40
    #: Share of home-AP owners who disabled cellular data (WiFi-intensive).
    data_off_share: float = 0.14
    mobile_ap_share: float = 0.03
    non_recruited_share: float = 0.03
    #: WiFi policy mixes keyed (os, "owner"/"nonowner"). Defaults are the
    #: Figure 9 calibration.
    policy_mix: Dict[str, Dict[str, PolicyMix]] = field(default_factory=dict)
    home_scatter_km: float = 6.0
    office_scatter_km: float = 3.0

    def __post_init__(self) -> None:
        if self.n_android < 0 or self.n_ios < 0:
            raise ConfigurationError("panel sizes must be >= 0")
        for name, value in (
            ("lte_share", self.lte_share),
            ("home_ap_share", self.home_ap_share),
            ("office_ap_share", self.office_ap_share),
            ("public_enrolled_share", self.public_enrolled_share),
            ("data_off_share", self.data_off_share),
            ("mobile_ap_share", self.mobile_ap_share),
            ("non_recruited_share", self.non_recruited_share),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {value}")
        if not self.policy_mix:
            self.policy_mix = default_policy_mix(self.year)
        for os_name, groups in self.policy_mix.items():
            for group, mix in groups.items():
                total = sum(mix.values())
                if not 0.99 < total < 1.01:
                    raise ConfigurationError(
                        f"policy mix {os_name}/{group} must sum to 1, got {total}"
                    )

    @property
    def n_total(self) -> int:
        return self.n_android + self.n_ios


def default_policy_mix(year: int) -> Dict[str, Dict[str, PolicyMix]]:
    """Year-appropriate WiFi policy mixes (calibrated to Figure 9).

    Owners overwhelmingly use their home router; the daytime-off habit eases
    from ~50% (2013) to ~40% (2015) of Android users; a stable quarter of
    the Android panel shows as WiFi-available (on, never associated). iOS
    panels connect ~30% more.
    """
    android = {
        2013: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.38, WifiPolicy.DAYTIME_OFF: 0.52,
                      WifiPolicy.ALWAYS_OFF: 0.04, WifiPolicy.NO_CONFIG: 0.06},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.25, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.15, WifiPolicy.NO_CONFIG: 0.55},
        },
        2014: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.44, WifiPolicy.DAYTIME_OFF: 0.47,
                      WifiPolicy.ALWAYS_OFF: 0.03, WifiPolicy.NO_CONFIG: 0.06},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.22, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.17, WifiPolicy.NO_CONFIG: 0.56},
        },
        2015: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.50, WifiPolicy.DAYTIME_OFF: 0.42,
                      WifiPolicy.ALWAYS_OFF: 0.02, WifiPolicy.NO_CONFIG: 0.06},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.24, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.13, WifiPolicy.NO_CONFIG: 0.58},
        },
    }
    ios = {
        2013: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.62, WifiPolicy.DAYTIME_OFF: 0.32,
                      WifiPolicy.ALWAYS_OFF: 0.02, WifiPolicy.NO_CONFIG: 0.04},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.25, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.25, WifiPolicy.NO_CONFIG: 0.45},
        },
        2014: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.67, WifiPolicy.DAYTIME_OFF: 0.28,
                      WifiPolicy.ALWAYS_OFF: 0.02, WifiPolicy.NO_CONFIG: 0.03},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.28, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.23, WifiPolicy.NO_CONFIG: 0.44},
        },
        2015: {
            "owner": {WifiPolicy.ALWAYS_ON: 0.72, WifiPolicy.DAYTIME_OFF: 0.24,
                      WifiPolicy.ALWAYS_OFF: 0.01, WifiPolicy.NO_CONFIG: 0.03},
            "nonowner": {WifiPolicy.ALWAYS_ON: 0.32, WifiPolicy.DAYTIME_OFF: 0.05,
                         WifiPolicy.ALWAYS_OFF: 0.21, WifiPolicy.NO_CONFIG: 0.42},
        },
    }
    if year not in android:
        raise ConfigurationError(f"no default policy mix for year {year}")
    return {"android": android[year], "ios": ios[year]}


def _scatter(anchor: Coordinate, scatter_km: float, rng: np.random.Generator) -> Coordinate:
    """Gaussian scatter around an anchor, in degrees (approx for Tokyo lat)."""
    dlat = rng.normal(0.0, scatter_km / 111.0)
    dlon = rng.normal(0.0, scatter_km / 91.0)
    lat = float(np.clip(anchor.lat + dlat, -89.0, 89.0))
    lon = float(np.clip(anchor.lon + dlon, -179.0, 179.0))
    return Coordinate(lat, lon)


def _pick_anchor(anchors, rng: np.random.Generator) -> Coordinate:
    names = [a[0] for a in anchors]
    weights = np.array([a[1] for a in anchors])
    idx = int(rng.choice(len(names), p=weights / weights.sum()))
    return PLACES[names[idx]]


def _sample_policy(mix: PolicyMix, rng: np.random.Generator) -> WifiPolicy:
    policies = list(mix)
    probs = np.array([mix[p] for p in policies])
    return policies[int(rng.choice(len(policies), p=probs / probs.sum()))]


def recruit(
    config: RecruitmentConfig,
    demand: DemandModel,
    rng: np.random.Generator,
) -> List[UserProfile]:
    """Build the full participant panel for one campaign."""
    profiles: List[UserProfile] = []
    os_plan = [DeviceOS.ANDROID] * config.n_android + [DeviceOS.IOS] * config.n_ios
    for user_id, os_kind in enumerate(os_plan):
        occupation = sample_occupation(config.year, rng)
        carrier = pick_carrier(rng)
        technology = assign_technology(config.lte_share, carrier, rng)
        home = _scatter(_pick_anchor(_HOME_ANCHORS, rng), config.home_scatter_km, rng)
        needs_office = occupation in (
            Occupation.GOVERNMENT, Occupation.OFFICE, Occupation.ENGINEER,
            Occupation.WORKER_OTHER, Occupation.PROFESSIONAL, Occupation.STUDENT,
        )
        office: Optional[Coordinate] = None
        if needs_office:
            office = _scatter(
                _pick_anchor(_OFFICE_ANCHORS, rng), config.office_scatter_km, rng
            )
        has_home_ap = rng.random() < config.home_ap_share
        os_key = "android" if os_kind is DeviceOS.ANDROID else "ios"
        group = "owner" if has_home_ap else "nonowner"
        policy = _sample_policy(config.policy_mix[os_key][group], rng)
        office_has_ap = bool(office is not None and rng.random() < config.office_ap_share)
        data_off = (
            has_home_ap
            and policy in (WifiPolicy.ALWAYS_ON, WifiPolicy.DAYTIME_OFF)
            and rng.random() < config.data_off_share
        )
        profiles.append(
            UserProfile(
                user_id=user_id,
                os=os_kind,
                carrier=carrier,
                technology=technology,
                occupation=occupation,
                home=home,
                office=office,
                has_home_ap=has_home_ap,
                office_has_ap=office_has_ap,
                wifi_policy=policy,
                public_enrolled=rng.random() < config.public_enrolled_share,
                cellular_data_off=data_off,
                appetite_bytes=demand.sample_appetite_bytes(rng),
                mix=demand.sample_mix(rng),
                has_mobile_ap=rng.random() < config.mobile_ap_share,
                commute_public_exposure=float(rng.beta(2.0, 2.0)),
                home_cell_leak=float(rng.beta(1.0, 1.25)),
                binge_propensity=float(np.exp(rng.normal(0.0, 1.0))),
                recruited=rng.random() >= config.non_recruited_share,
            )
        )
    return profiles
