"""Per-user profiles: everything that shapes one participant's behaviour.

A profile is the simulator-side identity of a participant. Fields fall into
three groups: device (OS/carrier/technology), environment (home/office
locations, whether a home broadband AP exists), and behaviour (WiFi interface
policy, public-WiFi enrollment, traffic appetite, category taste).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.demand import CategoryMix
from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate
from repro.net.cellular import Carrier, CellularTechnology
from repro.population.demographics import COMMUTER_OCCUPATIONS, Occupation
from repro.traces.records import DeviceOS


class WifiPolicy(enum.Enum):
    """How a user manages the WiFi interface (§3.3.4, Table 9).

    - ``ALWAYS_ON``: interface on all day; associates with any configured
      network in range.
    - ``DAYTIME_OFF``: explicitly turns WiFi off when leaving home and back
      on in the evening (the WiFi-off population, ~50% of Android users in
      2013 falling to ~40% in 2015).
    - ``ALWAYS_OFF``: never turns WiFi on (cellular-intensive).
    - ``NO_CONFIG``: interface on but no networks configured — shows up as
      WiFi-available, never associates ("difficult to set up" /
      "no configuration" in Table 9).
    """

    ALWAYS_ON = "always_on"
    DAYTIME_OFF = "daytime_off"
    ALWAYS_OFF = "always_off"
    NO_CONFIG = "no_config"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass
class UserProfile:
    """One recruited participant."""

    user_id: int
    os: DeviceOS
    carrier: Carrier
    technology: CellularTechnology
    occupation: Occupation
    home: Coordinate
    office: Optional[Coordinate]
    has_home_ap: bool
    office_has_ap: bool
    wifi_policy: WifiPolicy
    public_enrolled: bool
    #: The user disabled cellular data entirely and relies on WiFi alone
    #: (the WiFi-intensive population of Figure 5, ~8% of user-days).
    cellular_data_off: bool
    appetite_bytes: float
    mix: CategoryMix
    has_mobile_ap: bool = False
    commute_public_exposure: float = 0.5
    #: Fraction of at-home demand that still leaks onto cellular (WiFi
    #: assist, app pinning, brief disconnects).
    home_cell_leak: float = 0.2
    #: Multiplier on the WiFi binge-burst rate (a heavy-tailed minority of
    #: users binge video/downloads on WiFi; they become the heavy hitters).
    binge_propensity: float = 1.0
    recruited: bool = True

    #: Filled by the deployment step.
    home_ap_id: int = field(default=-1)
    office_ap_id: int = field(default=-1)
    mobile_ap_id: int = field(default=-1)

    def __post_init__(self) -> None:
        if self.appetite_bytes <= 0:
            raise ConfigurationError("appetite must be positive")
        if self.is_commuter and self.office is None:
            raise ConfigurationError(
                f"commuter occupation {self.occupation} requires an office"
            )
        if not 0.0 <= self.commute_public_exposure <= 1.0:
            raise ConfigurationError("commute exposure must be in [0, 1]")
        if not 0.0 <= self.home_cell_leak <= 1.0:
            raise ConfigurationError("home_cell_leak must be in [0, 1]")

    @property
    def is_commuter(self) -> bool:
        """Whether the weekday schedule includes a workplace commute."""
        return self.occupation in COMMUTER_OCCUPATIONS or (
            self.occupation is Occupation.STUDENT
        )

    @property
    def wifi_capable(self) -> bool:
        """Whether any WiFi association can ever happen for this user."""
        if self.wifi_policy in (WifiPolicy.ALWAYS_OFF, WifiPolicy.NO_CONFIG):
            return False
        return self.has_home_ap or self.office_has_ap or self.public_enrolled or (
            self.has_mobile_ap
        )
