"""Dataset invariant checks.

:func:`validate_dataset` verifies the structural invariants every consumer
relies on; it raises :class:`~repro.errors.SchemaError` on the first
violation and returns a summary on success. Run it after assembling a
dataset from an untrusted source (e.g. loaded from disk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SchemaError
from repro.traces.dataset import CampaignDataset
from repro.traces.records import IfaceKind, WifiStateCode


@dataclass(frozen=True)
class ValidationSummary:
    """Row counts per table after a successful validation."""

    n_devices: int
    n_aps: int
    rows: dict

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        rows = ", ".join(f"{k}={v}" for k, v in self.rows.items())
        return f"dataset ok: {self.n_devices} devices, {self.n_aps} APs, {rows}"


def validate_dataset(dataset: CampaignDataset) -> ValidationSummary:
    """Check structural invariants; raise :class:`SchemaError` on failure."""
    n_dev = dataset.n_devices
    n_slots = dataset.n_slots

    _check_range(dataset.traffic.device, 0, n_dev, "traffic.device")
    _check_range(dataset.traffic.t, 0, n_slots, "traffic.t")
    valid_ifaces = {int(k) for k in IfaceKind}
    if len(dataset.traffic) and not set(np.unique(dataset.traffic.iface)) <= valid_ifaces:
        raise SchemaError("traffic.iface contains unknown interface codes")
    _check_nonnegative(dataset.traffic.rx, "traffic.rx")
    _check_nonnegative(dataset.traffic.tx, "traffic.tx")
    _check_nonnegative(dataset.traffic.rx_pkts, "traffic.rx_pkts")
    _check_nonnegative(dataset.traffic.tx_pkts, "traffic.tx_pkts")
    if len(dataset.traffic):
        has_bytes = dataset.traffic.rx > 0
        if (dataset.traffic.rx_pkts[has_bytes] < 1).any():
            raise SchemaError("traffic rows with RX bytes must carry packets")

    _check_range(dataset.wifi.device, 0, n_dev, "wifi.device")
    _check_range(dataset.wifi.t, 0, n_slots, "wifi.t")
    valid_states = {int(k) for k in WifiStateCode}
    if len(dataset.wifi) and not set(np.unique(dataset.wifi.state)) <= valid_states:
        raise SchemaError("wifi.state contains unknown state codes")
    assoc = dataset.wifi.state == int(WifiStateCode.ASSOCIATED)
    if len(dataset.wifi) and (dataset.wifi.ap_id[assoc] < 0).any():
        raise SchemaError("associated wifi rows must reference an ap_id")
    known_aps = np.array(sorted(dataset.ap_directory), dtype=np.int64)
    referenced = np.unique(dataset.wifi.ap_id[assoc])
    if referenced.size and not np.isin(referenced, known_aps).all():
        raise SchemaError("wifi table references APs missing from the directory")

    _check_range(dataset.geo.device, 0, n_dev, "geo.device")
    _check_range(dataset.geo.t, 0, n_slots, "geo.t")

    _check_range(dataset.scans.device, 0, n_dev, "scans.device")
    if len(dataset.scans):
        if (dataset.scans.n24_strong > dataset.scans.n24_all).any():
            raise SchemaError("scans: 2.4GHz strong count exceeds total")
        if (dataset.scans.n5_strong > dataset.scans.n5_all).any():
            raise SchemaError("scans: 5GHz strong count exceeds total")

    _check_range(dataset.apps.device, 0, n_dev, "apps.device")
    _check_range(dataset.apps.day, 0, dataset.n_days, "apps.day")
    _check_nonnegative(dataset.apps.rx, "apps.rx")
    _check_nonnegative(dataset.apps.tx, "apps.tx")
    wifi_apps = dataset.apps.cellular == 0
    if len(dataset.apps) and (dataset.apps.ap_id[wifi_apps] < 0).any():
        raise SchemaError("WiFi app rows must reference an ap_id")

    _check_range(dataset.updates.device, 0, n_dev, "updates.device")
    _check_nonnegative(dataset.updates.bytes, "updates.bytes")

    _check_range(dataset.battery.device, 0, n_dev, "battery.device")
    _check_range(dataset.battery.t, 0, n_slots, "battery.t")
    if len(dataset.battery):
        levels = dataset.battery.level
        if levels.min() < 0.0 or levels.max() > 100.0:
            raise SchemaError("battery.level out of [0, 100]")

    rows = {
        name: len(getattr(dataset, name))
        for name in ("traffic", "wifi", "geo", "scans", "sightings", "apps",
                     "updates", "battery")
    }
    return ValidationSummary(n_devices=n_dev, n_aps=len(dataset.ap_directory), rows=rows)


def _check_range(col: np.ndarray, low: int, high: int, name: str) -> None:
    if len(col) == 0:
        return
    if col.min() < low or col.max() >= high:
        raise SchemaError(f"{name} out of range [{low}, {high})")


def _check_nonnegative(col: np.ndarray, name: str) -> None:
    if len(col) and col.min() < 0:
        raise SchemaError(f"{name} contains negative values")
