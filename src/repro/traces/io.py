"""Dataset persistence.

A dataset is saved as a directory: ``meta.json`` holds the campaign
metadata, device roster, AP directory, and (optionally) ground truth;
``tables.npz`` holds the column arrays. The format round-trips exactly.
"""

from __future__ import annotations

import json
from datetime import date
from pathlib import Path
from typing import Dict

import numpy as np

from repro.errors import DatasetError
from repro.net.accesspoint import APType
from repro.net.cellular import CellularTechnology
from repro.radio.bands import Band
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, GroundTruth, _Table
from repro.traces.records import ApDirectoryEntry, DeviceInfo, DeviceOS

_TABLE_NAMES = (
    "traffic", "wifi", "geo", "scans", "sightings", "apps", "updates", "battery",
)

_FORMAT_VERSION = 1


def save_dataset(dataset: CampaignDataset, path: "str | Path") -> Path:
    """Write ``dataset`` to directory ``path`` (created if needed)."""
    root = Path(path)
    root.mkdir(parents=True, exist_ok=True)
    meta = {
        "format_version": _FORMAT_VERSION,
        "year": dataset.year,
        "start": dataset.axis.start.isoformat(),
        "n_days": dataset.axis.n_days,
        "devices": [_device_to_json(d) for d in dataset.devices],
        "ap_directory": [_ap_to_json(e) for e in dataset.ap_directory.values()],
        "ground_truth": _truth_to_json(dataset.ground_truth),
    }
    (root / "meta.json").write_text(json.dumps(meta))
    arrays: Dict[str, np.ndarray] = {}
    for name in _TABLE_NAMES:
        table: _Table = getattr(dataset, name)
        for col, arr in table.columns.items():
            arrays[f"{name}__{col}"] = arr
    np.savez_compressed(root / "tables.npz", **arrays)
    return root


def load_dataset(path: "str | Path") -> CampaignDataset:
    """Read a dataset previously written by :func:`save_dataset`.

    Campaign-store directories (``--store disk``; see
    :mod:`repro.traces.store`) are detected by their manifest and loaded
    memory-mapped, so every dataset consumer reads either format through
    this one entry point.
    """
    root = Path(path)
    if (root / "store_manifest.json").exists():
        from repro.traces.store import CampaignStore

        return CampaignStore.open(root).load_dataset()
    meta_path = root / "meta.json"
    if not meta_path.exists():
        raise DatasetError(f"no dataset at {root}")
    meta = json.loads(meta_path.read_text())
    if meta.get("format_version") != _FORMAT_VERSION:
        raise DatasetError(
            f"unsupported dataset format version: {meta.get('format_version')}"
        )
    axis = TimeAxis(date.fromisoformat(meta["start"]), meta["n_days"])
    with np.load(root / "tables.npz") as data:
        tables = {}
        for name in _TABLE_NAMES:
            prefix = f"{name}__"
            cols = {
                key[len(prefix):]: data[key] for key in data.files
                if key.startswith(prefix)
            }
            tables[name] = _Table(cols)
    return CampaignDataset(
        year=meta["year"],
        axis=axis,
        devices=[_device_from_json(d) for d in meta["devices"]],
        ap_directory={
            e["ap_id"]: _ap_from_json(e) for e in meta["ap_directory"]
        },
        ground_truth=_truth_from_json(meta.get("ground_truth")),
        **tables,
    )


def _device_to_json(d: DeviceInfo) -> dict:
    return {
        "device_id": d.device_id,
        "os": d.os.value,
        "carrier": d.carrier,
        "technology": d.technology.value,
        "recruited": d.recruited,
        "occupation": d.occupation,
    }


def _device_from_json(d: dict) -> DeviceInfo:
    return DeviceInfo(
        device_id=d["device_id"],
        os=DeviceOS(d["os"]),
        carrier=d["carrier"],
        technology=CellularTechnology(d["technology"]),
        recruited=d["recruited"],
        occupation=d["occupation"],
    )


def _ap_to_json(e: ApDirectoryEntry) -> dict:
    return {
        "ap_id": e.ap_id,
        "bssid": e.bssid,
        "essid": e.essid,
        "band": e.band.value,
        "channel": e.channel,
    }


def _ap_from_json(e: dict) -> ApDirectoryEntry:
    return ApDirectoryEntry(
        ap_id=e["ap_id"],
        bssid=e["bssid"],
        essid=e["essid"],
        band=Band(e["band"]),
        channel=e["channel"],
    )


def _truth_to_json(truth: "GroundTruth | None") -> "dict | None":
    if truth is None:
        return None
    return {
        "ap_types": {str(k): v.value for k, v in truth.ap_types.items()},
        "home_ap_of_user": {str(k): v for k, v in truth.home_ap_of_user.items()},
        "office_ap_of_user": {str(k): v for k, v in truth.office_ap_of_user.items()},
        "wifi_policy_of_user": {
            str(k): v for k, v in truth.wifi_policy_of_user.items()
        },
    }


def _truth_from_json(blob: "dict | None") -> "GroundTruth | None":
    if blob is None:
        return None
    return GroundTruth(
        ap_types={int(k): APType(v) for k, v in blob["ap_types"].items()},
        home_ap_of_user={int(k): v for k, v in blob["home_ap_of_user"].items()},
        office_ap_of_user={int(k): v for k, v in blob["office_ap_of_user"].items()},
        wifi_policy_of_user={
            int(k): v for k, v in blob["wifi_policy_of_user"].items()
        },
    )
