"""Record types of the measurement schema (§2).

The measurement software records, every 10 minutes: byte counts per network
interface, application traffic (Android), WiFi association and scan results
(scans on Android only), coarse geolocation, and device information. These
dataclasses are the unit records the collection agent emits; the columnar
:class:`~repro.traces.dataset.CampaignDataset` stores the same fields as
arrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import SchemaError
from repro.net.cellular import CellularTechnology
from repro.radio.bands import Band


class IfaceKind(enum.IntEnum):
    """Network interface a byte counter belongs to."""

    CELL_3G = 0
    CELL_LTE = 1
    WIFI = 2

    @property
    def is_cellular(self) -> bool:
        return self in (IfaceKind.CELL_3G, IfaceKind.CELL_LTE)

    @classmethod
    def from_technology(cls, tech: CellularTechnology) -> "IfaceKind":
        if tech is CellularTechnology.LTE:
            return cls.CELL_LTE
        return cls.CELL_3G


class WifiStateCode(enum.IntEnum):
    """WiFi interface state in an observation (§3.3.4).

    ``UNKNOWN`` covers iOS when not associated: iOS only reports the
    associated AP, so off/available cannot be distinguished (§2).
    """

    OFF = 0
    AVAILABLE = 1
    ASSOCIATED = 2
    UNKNOWN = 3


class NetLocation(enum.IntEnum):
    """Network-and-place context used by the application breakdown (§3.6)."""

    CELL_HOME = 0
    CELL_OTHER = 1
    WIFI_HOME = 2
    WIFI_PUBLIC = 3
    WIFI_OFFICE = 4
    WIFI_OTHER = 5

    @property
    def label(self) -> str:
        return {
            NetLocation.CELL_HOME: "Cell home",
            NetLocation.CELL_OTHER: "Cell other",
            NetLocation.WIFI_HOME: "WiFi home",
            NetLocation.WIFI_PUBLIC: "WiFi public",
            NetLocation.WIFI_OFFICE: "WiFi office",
            NetLocation.WIFI_OTHER: "WiFi other",
        }[self]


class DeviceOS(enum.Enum):
    """Smartphone operating system."""

    ANDROID = "android"
    IOS = "ios"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class DeviceInfo:
    """Static per-device information recorded at enrollment.

    ``device_id`` is the unique random identifier the software generates; it
    is the only user identity in the dataset (§2).
    """

    device_id: int
    os: DeviceOS
    carrier: str
    technology: CellularTechnology
    recruited: bool = True
    occupation: str = "other"

    def __post_init__(self) -> None:
        if self.device_id < 0:
            raise SchemaError(f"device_id must be >= 0: {self.device_id}")


@dataclass(frozen=True)
class TrafficSample:
    """Bytes and packets moved on one interface during one 10-minute slot.

    Packet counts default to a size-derived estimate when the platform
    counter is unavailable (§2 records both byte and packet counts).
    """

    device_id: int
    t: int
    iface: IfaceKind
    rx_bytes: float
    tx_bytes: float
    rx_pkts: int = -1
    tx_pkts: int = -1
    tethering: bool = False

    def __post_init__(self) -> None:
        if self.rx_bytes < 0 or self.tx_bytes < 0:
            raise SchemaError(
                f"negative byte count: rx={self.rx_bytes} tx={self.tx_bytes}"
            )
        if self.rx_pkts < 0:
            object.__setattr__(self, "rx_pkts", estimate_packets(self.rx_bytes))
        if self.tx_pkts < 0:
            object.__setattr__(self, "tx_pkts", estimate_packets(self.tx_bytes))


#: Mean packet sizes used to estimate counters (download MTU-sized, upload
#: dominated by ACKs and small requests).
MEAN_RX_PACKET_BYTES = 1200.0
MEAN_TX_PACKET_BYTES = 400.0


def estimate_packets(n_bytes: float, mean_packet_bytes: float = MEAN_RX_PACKET_BYTES) -> int:
    """Packet-count estimate for a byte volume (ceil at one packet)."""
    if n_bytes <= 0:
        return 0
    return max(1, int(round(n_bytes / mean_packet_bytes)))


@dataclass(frozen=True)
class WifiObservation:
    """WiFi interface state during one slot.

    ``ap_id`` and ``rssi_dbm`` are meaningful only when associated.
    """

    device_id: int
    t: int
    state: WifiStateCode
    ap_id: int = -1
    rssi_dbm: float = 0.0

    def __post_init__(self) -> None:
        if self.state is WifiStateCode.ASSOCIATED and self.ap_id < 0:
            raise SchemaError("associated observation requires an ap_id")


@dataclass(frozen=True)
class GeoSample:
    """Coarse geolocation for one slot: the 5 km grid-cell index (§2)."""

    device_id: int
    t: int
    cell_col: int
    cell_row: int


@dataclass(frozen=True)
class ScanSummary:
    """Counts of detected public WiFi networks in one slot (Android).

    Split by band and by whether the max RSSI clears the "strong" threshold,
    matching Figure 17 and the §3.5 availability analysis.
    """

    device_id: int
    t: int
    n24_all: int
    n24_strong: int
    n5_all: int
    n5_strong: int

    def __post_init__(self) -> None:
        if self.n24_strong > self.n24_all or self.n5_strong > self.n5_all:
            raise SchemaError("strong count exceeds total count")
        if min(self.n24_all, self.n24_strong, self.n5_all, self.n5_strong) < 0:
            raise SchemaError("scan counts must be >= 0")


@dataclass(frozen=True)
class ScanSighting:
    """One detected (not necessarily associated) AP in a detailed scan."""

    device_id: int
    t: int
    ap_id: int
    rssi_dbm: float


@dataclass(frozen=True)
class AppTrafficRecord:
    """Per-application-category traffic for one device-day (Android, §2).

    Cellular rows carry the 5 km cell where the traffic occurred (so analyses
    can infer "cell at home" vs "cell elsewhere"); WiFi rows carry the
    associated ``ap_id``.
    """

    device_id: int
    day: int
    category: int
    iface_cellular: bool
    ap_id: int
    cell_col: int
    cell_row: int
    rx_bytes: float
    tx_bytes: float

    def __post_init__(self) -> None:
        if self.rx_bytes < 0 or self.tx_bytes < 0:
            raise SchemaError("negative app byte count")
        if not self.iface_cellular and self.ap_id < 0:
            raise SchemaError("WiFi app record requires an ap_id")


@dataclass(frozen=True)
class BatterySample:
    """Battery status for one slot (§2: the agent records battery state)."""

    device_id: int
    t: int
    level_pct: float
    charging: bool

    def __post_init__(self) -> None:
        if not 0.0 <= self.level_pct <= 100.0:
            raise SchemaError(f"battery level out of range: {self.level_pct}")


@dataclass(frozen=True)
class UpdateEvent:
    """A device OS update observed during the campaign (§3.7)."""

    device_id: int
    t: int
    bytes: float
    version: str = "ios-8.2"


@dataclass(frozen=True)
class ApDirectoryEntry:
    """Attributes of an AP observable by devices (identity + radio)."""

    ap_id: int
    bssid: str
    essid: str
    band: Band
    channel: int

    @property
    def key(self) -> tuple:
        return (self.bssid, self.essid)


def netloc_for(iface_cellular: bool, wifi_class: Optional[str] = None,
               cell_at_home: bool = False) -> NetLocation:
    """Map an app-traffic context onto a :class:`NetLocation` bucket."""
    if iface_cellular:
        return NetLocation.CELL_HOME if cell_at_home else NetLocation.CELL_OTHER
    mapping = {
        "home": NetLocation.WIFI_HOME,
        "public": NetLocation.WIFI_PUBLIC,
        "office": NetLocation.WIFI_OFFICE,
        "other": NetLocation.WIFI_OTHER,
    }
    if wifi_class not in mapping:
        raise SchemaError(f"unknown wifi class: {wifi_class!r}")
    return mapping[wifi_class]
