"""Dataset cleaning rules from §2.

Two atypical events are removed before the main analysis:

1. Tethering traffic (already excluded at ingest; :func:`drop_tethering`
   exists for datasets assembled from raw unit records).
2. The 2015 iOS 8.2 update: for each updated device, all traffic on the
   update day and the following day is dropped (the update itself is
   analyzed separately in §3.7 / Figure 18).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, List

import numpy as np

from repro.constants import SAMPLES_PER_DAY
from repro.traces.dataset import CampaignDataset
from repro.traces.records import TrafficSample


@dataclass(frozen=True)
class CleaningReport:
    """What a cleaning pass removed."""

    devices_affected: int
    traffic_rows_dropped: int
    app_rows_dropped: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"cleaning: {self.devices_affected} devices, "
            f"{self.traffic_rows_dropped} traffic rows, "
            f"{self.app_rows_dropped} app rows removed"
        )


def drop_tethering(samples: Iterable[TrafficSample]) -> List[TrafficSample]:
    """Filter tethering samples out of a raw record stream (§2)."""
    return [s for s in samples if not s.tethering]


def drop_update_window(dataset: CampaignDataset) -> "tuple[CampaignDataset, CleaningReport]":
    """Remove traffic on each device's update day and the next day (§2).

    Returns the cleaned dataset and a report. Datasets without update events
    are returned unchanged.
    """
    updates = dataset.updates
    if len(updates) == 0:
        return dataset, CleaningReport(0, 0, 0)

    update_day = {}
    for device, t in zip(updates.device, updates.t):
        day = int(t) // SAMPLES_PER_DAY
        # A device updates once; keep the earliest event defensively.
        update_day[int(device)] = min(day, update_day.get(int(device), day))

    devices = np.array(sorted(update_day), dtype=np.int64)
    days = np.array([update_day[d] for d in devices], dtype=np.int64)

    def window_mask(dev_col: np.ndarray, day_col: np.ndarray) -> np.ndarray:
        """True where the row falls in some device's blackout window."""
        pos = np.searchsorted(devices, dev_col)
        pos = np.clip(pos, 0, len(devices) - 1)
        hit = devices[pos] == dev_col
        start = days[pos]
        in_window = (day_col >= start) & (day_col <= start + 1)
        return hit & in_window

    traffic_day = dataset.traffic.t // SAMPLES_PER_DAY
    traffic_drop = window_mask(dataset.traffic.device, traffic_day)
    apps_drop = window_mask(dataset.apps.device, dataset.apps.day.astype(np.int64))

    cleaned = replace(
        dataset,
        traffic=dataset.traffic.select(~traffic_drop),
        apps=dataset.apps.select(~apps_drop),
    )
    report = CleaningReport(
        devices_affected=len(devices),
        traffic_rows_dropped=int(traffic_drop.sum()),
        app_rows_dropped=int(apps_drop.sum()),
    )
    return cleaned, report


def clean_for_main_analysis(dataset: CampaignDataset) -> CampaignDataset:
    """Apply every §2 cleaning rule and return the main-analysis dataset."""
    cleaned, _ = drop_update_window(dataset)
    return cleaned
