"""Out-of-core columnar campaign storage.

A :class:`CampaignStore` is the disk twin of the in-memory
:class:`~repro.traces.dataset.CampaignDataset`: one directory per campaign
holding every table as canonical-order column files that analyses read
**memory-mapped**, so a campaign never has to fit in RAM. It is the seam
between the engine (which spills each completed shard's columnar chunks
into a *partition* as it arrives, instead of accumulating them in the
parent) and the analysis layer (which maps the finalized columns and pays
only for the pages it touches).

Layout::

    campaign2015/
        store_manifest.json       # format, fingerprint, per-column schema
        meta.json                 # devices, AP directory, ground truth
        tables/traffic__rx.npy    # canonical (device, t)-sorted columns
        tables/...
        parts/shard-0007/         # spill partitions (removed on finalize
            part_manifest.json    # unless checkpoints reference them)
            traffic__rx.npy
            ...

Two backends share the layout above the table files:

- ``npy`` (default, **no dependency beyond numpy**): one ``.npy`` file per
  (table, column), loaded with ``np.load(..., mmap_mode="r")``. Column
  projection pushdown is structural — a reader opens only the column files
  it asks for — and predicate pushdown reads just the predicate columns
  before gathering the projection.
- ``parquet`` (optional, needs pyarrow): one Parquet file per table,
  written in row-group chunks and read back memory-mapped. The *data* is
  bit-identical to the npy backend — the fingerprint hashes column bytes,
  not files — so backends interoperate freely.

Determinism: the streaming merge (:meth:`CampaignStore.finalize`)
reproduces ``DatasetBuilder.build`` exactly — partitions are concatenated
in canonical shard order and each table is permuted by the same stable
``np.lexsort((t, device))`` — so a store-backed dataset is bit-for-bit
identical to the in-memory path at any ``n_jobs`` (pinned by
``tests/test_store.py``). Peak memory of the merge is bounded by the sort
keys plus the permutation (~16 bytes/row) and one copy block, never by
the full table.

The **fingerprint** is a SHA-256 over the schema and the content digest of
every finalized column; :meth:`AnalysisContext.for_store
<repro.analysis.context.AnalysisContext.for_store>` keys its memo on it,
so rewriting a store invalidates cached artifacts while reopening an
unchanged one reuses them.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.errors import ConfigurationError, DatasetError
from repro.obs.recorder import get_recorder
from repro.obs.span import get_tracer
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, GroundTruth, _EMPTY_DTYPES, _Table
from repro.traces.io import (
    _ap_from_json,
    _ap_to_json,
    _device_from_json,
    _device_to_json,
    _truth_from_json,
    _truth_to_json,
)
from repro.traces.records import ApDirectoryEntry, DeviceInfo

__all__ = [
    "CampaignStore",
    "PartitionRef",
    "STORE_FORMATS",
    "STORE_MANIFEST",
    "is_store_dir",
    "open_store",
    "store_fingerprint",
    "sweep_orphan_partitions",
]

STORE_MANIFEST = "store_manifest.json"
_PART_MANIFEST = "part_manifest.json"
_STORE_VERSION = 1

#: Rows copied (and hashed) per block during the streaming merge; bounds
#: the merge's transient working set to one block per column.
MERGE_BLOCK_ROWS = 1 << 18

STORE_FORMATS = ("npy", "parquet")

_TABLE_NAMES = tuple(_EMPTY_DTYPES)


def _have_pyarrow() -> bool:
    try:  # pragma: no cover - depends on the host environment
        import pyarrow  # noqa: F401
        import pyarrow.parquet  # noqa: F401
    except Exception:
        return False
    return True


def _resolve_format(fmt: str) -> str:
    if fmt == "auto":
        return "parquet" if _have_pyarrow() else "npy"
    if fmt not in STORE_FORMATS:
        raise ConfigurationError(
            f"unknown store format {fmt!r}; expected one of "
            f"{STORE_FORMATS} (or 'auto')"
        )
    if fmt == "parquet" and not _have_pyarrow():
        raise ConfigurationError(
            "store format 'parquet' needs pyarrow, which is not "
            "installed; use the dependency-free 'npy' format or install "
            "the [arrow] extra"
        )
    return fmt


@dataclass(frozen=True)
class PartitionRef:
    """Small picklable handle to one spilled shard partition.

    Carries everything the merge and checkpoint layers need without
    touching the data again: per-table row counts, the AP ids the shard
    observed, and a digest of the partition manifest so a checkpoint that
    references a partition can detect a stale or vanished spill and fall
    back to re-simulation.
    """

    root: str
    name: str
    n_rows: Mapping[str, int]
    n_bytes: int
    observed_ap_ids: Tuple[int, ...]
    digest: str

    @property
    def path(self) -> Path:
        return Path(self.root) / "parts" / self.name

    def is_valid(self) -> bool:
        """True when the on-disk partition still matches this handle."""
        manifest_path = self.path / _PART_MANIFEST
        try:
            blob = manifest_path.read_bytes()
        except OSError:
            return False
        return hashlib.sha256(blob).hexdigest() == self.digest

    def chunk_map(self) -> Dict[str, List[Dict[str, np.ndarray]]]:
        """The partition's tables as one builder-compatible chunk each.

        Within a shard the builder concatenates chunks in append order
        before sorting, so the concatenated per-column arrays stored here
        are interchangeable with the original chunk list — merging them
        produces a bit-identical dataset. Used when a checkpointed,
        partition-backed shard is resumed into a run without a store.
        """
        if not self.is_valid():
            raise DatasetError(
                f"store partition {self.path} is missing or stale; "
                f"re-run without --resume to re-simulate the shard"
            )
        chunks: Dict[str, List[Dict[str, np.ndarray]]] = {}
        for table, rows in self.n_rows.items():
            if rows == 0:
                chunks[table] = []
                continue
            columns = {
                column: np.load(
                    self.path / f"{table}__{column}.npy", mmap_mode="r"
                )
                for column, _ in _EMPTY_DTYPES[table]
            }
            chunks[table] = [columns]
        return chunks


class CampaignStore:
    """One campaign's out-of-core columnar storage directory."""

    def __init__(self, root: Union[str, Path], year: int, axis: TimeAxis,
                 format: str = "npy") -> None:
        self.root = Path(root)
        self.year = year
        self.axis = axis
        self.format = _resolve_format(format)
        #: Set by :meth:`finalize` / :meth:`_read_manifest`.
        self._manifest: Optional[dict] = None

    # -- opening an existing store ----------------------------------------

    @classmethod
    def open(cls, root: Union[str, Path]) -> "CampaignStore":
        """Open a finalized store for reading."""
        root = Path(root)
        manifest_path = root / STORE_MANIFEST
        if not manifest_path.exists():
            raise DatasetError(f"no campaign store at {root}")
        manifest = json.loads(manifest_path.read_text())
        if manifest.get("store_version") != _STORE_VERSION:
            raise DatasetError(
                f"unsupported store version: {manifest.get('store_version')}"
            )
        axis = TimeAxis(date.fromisoformat(manifest["start"]),
                        manifest["n_days"])
        store = cls(root, manifest["year"], axis, manifest["format"])
        store._manifest = manifest
        return store

    @property
    def parts_dir(self) -> Path:
        return self.root / "parts"

    @property
    def tables_dir(self) -> Path:
        return self.root / "tables"

    @property
    def fingerprint(self) -> str:
        """Content fingerprint of the finalized store (schema + data)."""
        if self._manifest is None:
            self._manifest = self._read_manifest()
        return self._manifest["fingerprint"]

    def _read_manifest(self) -> dict:
        manifest_path = self.root / STORE_MANIFEST
        if not manifest_path.exists():
            raise DatasetError(
                f"campaign store {self.root} has not been finalized"
            )
        return json.loads(manifest_path.read_text())

    # -- shard spill (engine write path) -----------------------------------

    def write_partition(
        self,
        name: str,
        chunks: Mapping[str, Sequence[Mapping[str, np.ndarray]]],
    ) -> PartitionRef:
        """Land one shard's columnar chunks as a spill partition.

        Chunks are concatenated per column in append order (exactly the
        order ``DatasetBuilder.build`` would see), written atomically
        (temp dir + rename), and summarized in a ``part_manifest.json``
        whose digest rides on the returned :class:`PartitionRef`.
        """
        self.parts_dir.mkdir(parents=True, exist_ok=True)
        final_dir = self.parts_dir / name
        tmp_dir = self.parts_dir / f".{name}.tmp"
        if tmp_dir.exists():
            shutil.rmtree(tmp_dir)
        tmp_dir.mkdir(parents=True)
        n_rows: Dict[str, int] = {}
        n_bytes = 0
        observed: Set[int] = set()
        for table in _TABLE_NAMES:
            chunk_list = list(chunks.get(table, ()))
            if not chunk_list:
                n_rows[table] = 0
                continue
            names = [column for column, _ in _EMPTY_DTYPES[table]]
            rows = 0
            for column in names:
                arr = (chunk_list[0][column] if len(chunk_list) == 1
                       else np.concatenate(
                           [chunk[column] for chunk in chunk_list]))
                arr = np.ascontiguousarray(arr)
                np.save(tmp_dir / f"{table}__{column}.npy", arr)
                rows = len(arr)
                n_bytes += arr.nbytes
                if column == "ap_id":
                    unique = np.unique(arr)
                    observed.update(int(a) for a in unique if a >= 0)
            n_rows[table] = rows
        manifest = {
            "name": name,
            "year": self.year,
            "n_rows": n_rows,
            "n_bytes": n_bytes,
            "observed_ap_ids": sorted(observed),
        }
        blob = (json.dumps(manifest, sort_keys=True) + "\n").encode()
        (tmp_dir / _PART_MANIFEST).write_bytes(blob)
        if final_dir.exists():
            shutil.rmtree(final_dir)
        tmp_dir.rename(final_dir)
        tracer = get_tracer()
        tracer.count("store_partitions")
        tracer.count("store_spill_bytes", n_bytes)
        get_recorder().emit("spill", year=self.year, partition=name,
                            bytes=n_bytes)
        return PartitionRef(
            root=str(self.root), name=name, n_rows=dict(n_rows),
            n_bytes=n_bytes, observed_ap_ids=tuple(sorted(observed)),
            digest=hashlib.sha256(blob).hexdigest(),
        )

    def partition_names(self) -> List[str]:
        """Names of every on-disk spill partition (orphans included)."""
        if not self.parts_dir.is_dir():
            return []
        return sorted(
            entry.name for entry in self.parts_dir.iterdir()
            if entry.is_dir() and not entry.name.startswith(".")
        )

    def sweep_partitions(self, keep: Iterable[str] = ()) -> List[str]:
        """Remove spill partitions not in ``keep``; returns removed names.

        The janitor twin of the engine's shared-memory ``sweep_orphans``:
        a chaos-killed run leaves partitions behind, and the campaign
        runner reclaims them in its ``finally`` unless a checkpoint store
        still references them for resume.
        """
        keep_set = set(keep)
        removed = []
        for name in self.partition_names():
            if name not in keep_set:
                shutil.rmtree(self.parts_dir / name, ignore_errors=True)
                removed.append(name)
        if not keep_set and self.parts_dir.is_dir():
            shutil.rmtree(self.parts_dir, ignore_errors=True)
        return removed

    # -- streaming merge (finalize) ----------------------------------------

    def finalize(
        self,
        devices: Sequence[DeviceInfo],
        ap_directory: Mapping[int, ApDirectoryEntry],
        ground_truth: Optional[GroundTruth],
        partitions: Sequence[PartitionRef],
    ) -> dict:
        """Streaming-merge ``partitions`` (in canonical shard order) into
        the finalized canonical column files, then write the manifests.

        Stage 1 copies each partition's columns into append-order staging
        files (mmap to mmap, never a whole table in RAM). Stage 2 computes
        the stable ``lexsort((t, device))`` permutation from the two key
        columns and applies it block-wise to every column, hashing the
        sorted bytes into the content fingerprint as they are written.
        """
        with get_tracer().span("store_finalize", year=self.year,
                               n_partitions=len(partitions)):
            manifest = self._finalize(devices, ap_directory, ground_truth,
                                      partitions)
        get_recorder().emit("store_finalized", year=self.year,
                            n_partitions=len(partitions))
        return manifest

    def _finalize(self, devices, ap_directory, ground_truth, partitions):
        self.tables_dir.mkdir(parents=True, exist_ok=True)
        tables_meta: Dict[str, dict] = {}
        for table in _TABLE_NAMES:
            tables_meta[table] = self._merge_table(table, partitions,
                                                   len(devices))
        fingerprint = hashlib.sha256()
        for table in _TABLE_NAMES:
            for column, _ in _EMPTY_DTYPES[table]:
                meta = tables_meta[table]["columns"][column]
                fingerprint.update(
                    f"{table}.{column}:{meta['dtype']}:{meta['sha256']}"
                    .encode()
                )
        manifest = {
            "store_version": _STORE_VERSION,
            "format": self.format,
            "year": self.year,
            "start": self.axis.start.isoformat(),
            "n_days": self.axis.n_days,
            "n_partitions": len(partitions),
            "tables": tables_meta,
            "fingerprint": fingerprint.hexdigest(),
        }
        meta = {
            "format_version": 1,
            "year": self.year,
            "start": self.axis.start.isoformat(),
            "n_days": self.axis.n_days,
            "devices": [_device_to_json(d) for d in devices],
            "ap_directory": [_ap_to_json(e) for e in ap_directory.values()],
            "ground_truth": _truth_to_json(ground_truth),
        }
        (self.root / "meta.json").write_text(json.dumps(meta))
        (self.root / STORE_MANIFEST).write_text(
            json.dumps(manifest, indent=2, sort_keys=True) + "\n"
        )
        self._manifest = manifest
        return manifest

    def _merge_table(self, table: str, partitions: Sequence[PartitionRef],
                     n_devices: int) -> dict:
        column_specs = _EMPTY_DTYPES[table]
        total = sum(ref.n_rows.get(table, 0) for ref in partitions)
        if total == 0:
            columns_meta = {}
            for column, dtype in column_specs:
                arr = np.array([], dtype=dtype)
                self._write_column(table, column, arr, staged=None)
                columns_meta[column] = {
                    "dtype": np.dtype(dtype).str,
                    "sha256": hashlib.sha256(b"").hexdigest(),
                }
            return {"n_rows": 0, "columns": columns_meta}

        # Stage 1: append-order staging memmaps, one per column.
        staged: Dict[str, np.memmap] = {}
        stage_paths: Dict[str, Path] = {}
        for column, dtype in column_specs:
            path = self.tables_dir / f".stage-{table}__{column}.npy"
            stage_paths[column] = path
            staged[column] = np.lib.format.open_memmap(
                path, mode="w+", dtype=np.dtype(dtype), shape=(total,)
            )
        offset = 0
        for ref in partitions:
            rows = ref.n_rows.get(table, 0)
            if rows == 0:
                continue
            for column, _ in column_specs:
                src = np.load(ref.path / f"{table}__{column}.npy",
                              mmap_mode="r")
                if len(src) != rows:
                    raise DatasetError(
                        f"partition {ref.name} table {table!r}: column "
                        f"{column!r} has {len(src)} rows, manifest says "
                        f"{rows}"
                    )
                staged[column][offset:offset + rows] = src
                del src
            offset += rows

        # Range validation, mirroring DatasetBuilder._validate_ranges.
        device_col = staged["device"]
        sort_key = "t" if "t" in staged else "day"
        key_col = staged[sort_key]
        limit = self.axis.n_slots if sort_key == "t" else self.axis.n_days
        if int(device_col.min()) < 0 or int(device_col.max()) >= n_devices:
            raise DatasetError(f"table {table!r} references unknown device")
        if int(key_col.min()) < 0 or int(key_col.max()) >= limit:
            raise DatasetError(f"table {table!r} has out-of-range {sort_key}")

        # Stage 2: the builder's exact stable sort, applied block-wise.
        order = np.lexsort((np.asarray(key_col), np.asarray(device_col)))
        columns_meta = {}
        for column, dtype in column_specs:
            digest = self._write_column(table, column, staged[column],
                                        staged=order)
            columns_meta[column] = {
                "dtype": np.dtype(dtype).str, "sha256": digest,
            }
        for column, _ in column_specs:
            # Release the staging mmap before unlinking its file.
            staged.pop(column)
            stage_paths[column].unlink()
        return {"n_rows": int(total), "columns": columns_meta}

    def _write_column(self, table: str, column: str, source,
                      staged: Optional[np.ndarray]) -> str:
        """Write one finalized column (npy or parquet row append) and
        return the content digest of its sorted bytes."""
        if self.format == "parquet":
            return self._write_column_parquet(table, column, source, staged)
        path = self.tables_dir / f"{table}__{column}.npy"
        if staged is None:  # empty table
            np.save(path, np.asarray(source))
            return hashlib.sha256(b"").hexdigest()
        total = len(source)
        out = np.lib.format.open_memmap(
            path, mode="w+", dtype=source.dtype, shape=(total,)
        )
        hasher = hashlib.sha256()
        for lo in range(0, total, MERGE_BLOCK_ROWS):
            hi = min(lo + MERGE_BLOCK_ROWS, total)
            block = source[staged[lo:hi]]
            out[lo:hi] = block
            hasher.update(np.ascontiguousarray(block).tobytes())
        out.flush()
        del out
        return hasher.hexdigest()

    # -- parquet backend ---------------------------------------------------

    def _write_column_parquet(self, table: str, column: str, source,
                              staged: Optional[np.ndarray]) -> str:
        """Buffer sorted column blocks; the last column flushes the file.

        Parquet is row-grouped per table, so columns are accumulated and
        the table file is written once the final column of the table
        arrives (column specs are iterated in schema order).
        """
        import pyarrow as pa
        import pyarrow.parquet as pq

        buffered = getattr(self, "_parquet_buffer", None)
        if buffered is None or buffered[0] != table:
            buffered = (table, {})
            self._parquet_buffer = buffered
        hasher = hashlib.sha256()
        if staged is None:
            sorted_column = np.asarray(source)
        else:
            total = len(source)
            sorted_column = np.empty(total, dtype=source.dtype)
            for lo in range(0, total, MERGE_BLOCK_ROWS):
                hi = min(lo + MERGE_BLOCK_ROWS, total)
                sorted_column[lo:hi] = source[staged[lo:hi]]
        hasher.update(np.ascontiguousarray(sorted_column).tobytes())
        buffered[1][column] = sorted_column
        specs = _EMPTY_DTYPES[table]
        if column == specs[-1][0]:  # last column: flush the table file
            arrays = {name: buffered[1][name] for name, _ in specs}
            pa_table = pa.table(
                {name: pa.array(arr) for name, arr in arrays.items()}
            )
            pq.write_table(
                pa_table, self.tables_dir / f"{table}.parquet",
                row_group_size=MERGE_BLOCK_ROWS, compression="zstd",
            )
            self._parquet_buffer = None
        return hasher.hexdigest()

    def _load_column_parquet(self, table: str, column: str,
                             dtype: np.dtype) -> np.ndarray:
        import pyarrow.parquet as pq

        pa_table = pq.read_table(
            self.tables_dir / f"{table}.parquet", columns=[column],
            memory_map=True,
        )
        arr = pa_table.column(column).to_numpy(zero_copy_only=False)
        return np.ascontiguousarray(arr, dtype=dtype)

    # -- read path ---------------------------------------------------------

    def column(self, table: str, column: str) -> np.ndarray:
        """One finalized column, memory-mapped read-only where possible."""
        manifest = self._manifest or self._read_manifest()
        self._manifest = manifest
        try:
            table_meta = manifest["tables"][table]
            dtype = np.dtype(table_meta["columns"][column]["dtype"])
        except KeyError:
            raise DatasetError(
                f"store {self.root} has no column {table}.{column}"
            ) from None
        if self.format == "parquet":
            return self._load_column_parquet(table, column, dtype)
        path = self.tables_dir / f"{table}__{column}.npy"
        if table_meta["n_rows"] == 0:
            return np.load(path)
        return np.load(path, mmap_mode="r")

    def table(self, name: str,
              columns: Optional[Sequence[str]] = None) -> _Table:
        """A table with only ``columns`` mapped (projection pushdown)."""
        wanted = ([c for c, _ in _EMPTY_DTYPES[name]]
                  if columns is None else list(columns))
        return _Table({column: self.column(name, column)
                       for column in wanted})

    def select(
        self,
        table: str,
        columns: Optional[Sequence[str]] = None,
        where: Optional[Mapping[str, object]] = None,
    ) -> Dict[str, np.ndarray]:
        """Projected, filtered rows with predicate pushdown.

        ``where`` maps column names to either a scalar (equality) or a
        ``(lo, hi)`` half-open range. Only predicate columns are read to
        build the row mask; projected columns are then gathered through
        it — the rest of the table's bytes never leave disk.
        """
        mask: Optional[np.ndarray] = None
        for column, predicate in (where or {}).items():
            values = self.column(table, column)
            if isinstance(predicate, tuple):
                lo, hi = predicate
                hit = (values >= lo) & (values < hi)
            else:
                hit = values == predicate
            mask = hit if mask is None else (mask & hit)
        wanted = ([c for c, _ in _EMPTY_DTYPES[table]]
                  if columns is None else list(columns))
        out = {}
        for column in wanted:
            values = self.column(table, column)
            out[column] = np.asarray(values if mask is None
                                     else values[mask])
        return out

    def load_dataset(self) -> CampaignDataset:
        """The finalized campaign as a dataset over memory-mapped columns.

        Bit-identical to the in-memory build; column arrays are lazily
        paged from disk, so analyses touch only the bytes they use.
        """
        meta_path = self.root / "meta.json"
        if not meta_path.exists():
            raise DatasetError(
                f"campaign store {self.root} has not been finalized"
            )
        meta = json.loads(meta_path.read_text())
        tables = {name: self.table(name) for name in _TABLE_NAMES}
        return CampaignDataset(
            year=meta["year"],
            axis=TimeAxis(date.fromisoformat(meta["start"]), meta["n_days"]),
            devices=[_device_from_json(d) for d in meta["devices"]],
            ap_directory={
                e["ap_id"]: _ap_from_json(e) for e in meta["ap_directory"]
            },
            ground_truth=_truth_from_json(meta.get("ground_truth")),
            **tables,
        )


def is_store_dir(path: Union[str, Path]) -> bool:
    """True when ``path`` holds a finalized campaign store."""
    return (Path(path) / STORE_MANIFEST).exists()


def open_store(path: Union[str, Path]) -> CampaignStore:
    """Open a finalized store for reading (alias of ``CampaignStore.open``)."""
    return CampaignStore.open(path)


def store_fingerprint(path: Union[str, Path]) -> str:
    """The content fingerprint of a finalized store directory."""
    return CampaignStore.open(path).fingerprint


def sweep_orphan_partitions(root: Union[str, Path]) -> List[str]:
    """Reclaim spill partitions under a store (or store-parent) directory.

    The disk analogue of ``repro.engine.transport.sweep_orphans``: a run
    killed between spill and finalize leaves ``parts/`` behind; this
    removes every partition under ``root`` (a single campaign store or a
    ``--store-dir`` holding several) and returns the removed names.
    """
    root = Path(root)
    removed: List[str] = []
    for parts in _orphan_parts_dirs(root):
        for entry in sorted(parts.iterdir()):
            removed.append(entry.name)
        shutil.rmtree(parts, ignore_errors=True)
    return removed


def list_orphan_partitions(root: Union[str, Path]) -> List[str]:
    """What :func:`sweep_orphan_partitions` would remove, without removing.

    Backs ``repro clean --dry-run``.
    """
    names: List[str] = []
    for parts in _orphan_parts_dirs(Path(root)):
        names.extend(sorted(entry.name for entry in parts.iterdir()))
    return names


def _orphan_parts_dirs(root: Path) -> List[Path]:
    candidates = [root] + sorted(
        p for p in root.glob("campaign*") if p.is_dir()
    )
    return [c / "parts" for c in candidates if (c / "parts").is_dir()]
