"""Columnar campaign dataset.

A :class:`CampaignDataset` holds one campaign's records as numpy column
arrays, which is what every analysis operates on. :class:`DatasetBuilder`
accumulates records (either unit records from the collection pipeline or bulk
appends from the simulator) and freezes them into a dataset.

Ground truth (AP deployment categories, users' true home APs) is carried
separately in :class:`GroundTruth` and is **never read by analyses** — it
exists so tests can score the inference algorithms against it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.errors import DatasetError, SchemaError
from repro.net.accesspoint import APType
from repro.timeutil import TimeAxis
from repro.traces.records import (
    ApDirectoryEntry,
    AppTrafficRecord,
    BatterySample,
    DeviceInfo,
    DeviceOS,
    GeoSample,
    IfaceKind,
    ScanSighting,
    ScanSummary,
    TrafficSample,
    UpdateEvent,
    WifiObservation,
    WifiStateCode,
)


@dataclass
class _Table:
    """A named bundle of equal-length numpy columns."""

    columns: Dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {name: len(col) for name, col in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise SchemaError(f"ragged table columns: {lengths}")

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def __getattr__(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise AttributeError(name) from None

    def select(self, mask: np.ndarray) -> "_Table":
        """Row-filtered copy."""
        return _Table({name: col[mask] for name, col in self.columns.items()})


@dataclass
class GroundTruth:
    """Simulator-side truth for scoring inference (not used by analyses)."""

    ap_types: Dict[int, APType] = field(default_factory=dict)
    home_ap_of_user: Dict[int, int] = field(default_factory=dict)
    office_ap_of_user: Dict[int, int] = field(default_factory=dict)
    wifi_policy_of_user: Dict[int, str] = field(default_factory=dict)


@dataclass
class CampaignDataset:
    """One measurement campaign as column arrays.

    Tables (all sorted by (device, t) where applicable):

    - ``traffic``: device, t, iface, rx, tx, rx_pkts, tx_pkts — bytes and
      packets per interface per slot.
    - ``wifi``: device, t, state, ap_id, rssi — WiFi interface observations.
    - ``geo``: device, t, col, row — coarse 5 km location.
    - ``scans``: device, t, n24_all, n24_strong, n5_all, n5_strong — public-AP
      scan counts (Android, interface on).
    - ``sightings``: device, t, ap_id, rssi — detailed scan results sampled
      hourly (Android).
    - ``apps``: device, day, category, cellular, ap_id, col, row, rx, tx —
      daily per-category app traffic (Android).
    - ``updates``: device, t, bytes — OS update events.
    - ``battery``: device, t, level, charging — battery status samples.
    """

    year: int
    axis: TimeAxis
    devices: List[DeviceInfo]
    ap_directory: Dict[int, ApDirectoryEntry]
    traffic: _Table
    wifi: _Table
    geo: _Table
    scans: _Table
    sightings: _Table
    apps: _Table
    updates: _Table
    battery: _Table
    ground_truth: Optional[GroundTruth] = None

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def n_devices(self) -> int:
        return len(self.devices)

    @property
    def n_days(self) -> int:
        return self.axis.n_days

    @property
    def n_slots(self) -> int:
        return self.axis.n_slots

    @property
    def table_names(self) -> Tuple[str, ...]:
        """The eight table attribute names, in canonical order."""
        return tuple(_EMPTY_DTYPES)

    @property
    def n_rows_total(self) -> int:
        """Total rows across every table (throughput denominators)."""
        return sum(len(getattr(self, name)) for name in _EMPTY_DTYPES)

    def device(self, device_id: int) -> DeviceInfo:
        """Look up a device record by id (ids are dense 0..n-1)."""
        if not 0 <= device_id < len(self.devices):
            raise DatasetError(f"unknown device_id {device_id}")
        return self.devices[device_id]

    def device_os(self) -> np.ndarray:
        """Array of OS codes per device (0=Android, 1=iOS)."""
        return np.array(
            [0 if d.os is DeviceOS.ANDROID else 1 for d in self.devices],
            dtype=np.int8,
        )

    def android_ids(self) -> np.ndarray:
        return np.flatnonzero(self.device_os() == 0)

    def ios_ids(self) -> np.ndarray:
        return np.flatnonzero(self.device_os() == 1)

    # ------------------------------------------------------------------
    # Core aggregations shared by many analyses
    # ------------------------------------------------------------------

    def daily_matrix(
        self,
        kind: str = "all",
        direction: str = "rx",
    ) -> np.ndarray:
        """Per-(device, day) byte totals as an (n_devices, n_days) array.

        ``kind`` selects interfaces: ``"all"``, ``"cell"``, ``"wifi"``,
        ``"3g"``, ``"lte"``. ``direction`` is ``"rx"`` or ``"tx"``.
        """
        mask = self._iface_mask(kind)
        values = self._direction_column(direction)[mask]
        dev = self.traffic.device[mask]
        day = self.traffic.t[mask] // SAMPLES_PER_DAY
        out = np.zeros((self.n_devices, self.n_days))
        np.add.at(out, (dev, day), values)
        return out

    def hourly_series(self, kind: str = "all", direction: str = "rx") -> np.ndarray:
        """Total bytes per hour of the campaign (length ``n_days * 24``)."""
        mask = self._iface_mask(kind)
        values = self._direction_column(direction)[mask]
        hour = self.traffic.t[mask] // SAMPLES_PER_HOUR
        out = np.zeros(self.n_days * 24)
        np.add.at(out, hour, values)
        return out

    def _iface_mask(self, kind: str) -> np.ndarray:
        iface = self.traffic.iface
        if kind == "all":
            return np.ones(len(iface), dtype=bool)
        if kind == "cell":
            return iface != int(IfaceKind.WIFI)
        if kind == "wifi":
            return iface == int(IfaceKind.WIFI)
        if kind == "3g":
            return iface == int(IfaceKind.CELL_3G)
        if kind == "lte":
            return iface == int(IfaceKind.CELL_LTE)
        raise DatasetError(f"unknown interface kind: {kind!r}")

    def _direction_column(self, direction: str) -> np.ndarray:
        if direction == "rx":
            return self.traffic.rx
        if direction == "tx":
            return self.traffic.tx
        raise DatasetError(f"unknown direction: {direction!r}")


class DatasetBuilder:
    """Accumulates records and freezes them into a :class:`CampaignDataset`.

    Accepts both unit records (:meth:`add_traffic` etc., used by the
    collection server) and column chunks (:meth:`extend_traffic` etc., used
    by the simulator's fast path). Rows may arrive in any order; ``build``
    sorts each table by (device, t).
    """

    def __init__(self, year: int, axis: TimeAxis) -> None:
        self.year = year
        self.axis = axis
        self.devices: List[DeviceInfo] = []
        self.ap_directory: Dict[int, ApDirectoryEntry] = {}
        self.ground_truth: Optional[GroundTruth] = None
        self._chunks: Dict[str, List[Dict[str, np.ndarray]]] = {
            name: [] for name in (
                "traffic", "wifi", "geo", "scans", "sightings", "apps",
                "updates", "battery",
            )
        }

    # -- registry -------------------------------------------------------

    def add_device(self, info: DeviceInfo) -> None:
        if info.device_id != len(self.devices):
            raise SchemaError(
                f"device ids must be dense: expected {len(self.devices)}, "
                f"got {info.device_id}"
            )
        self.devices.append(info)

    def add_ap(self, entry: ApDirectoryEntry) -> None:
        if entry.ap_id in self.ap_directory:
            raise SchemaError(f"duplicate ap_id {entry.ap_id}")
        self.ap_directory[entry.ap_id] = entry

    # -- unit-record appends (collection pipeline) -----------------------

    def add_traffic(self, s: TrafficSample) -> None:
        if s.tethering:
            # Tethering traffic is excluded at ingest (§2 cleaning).
            return
        self.extend_traffic(
            device=[s.device_id], t=[s.t], iface=[int(s.iface)],
            rx=[s.rx_bytes], tx=[s.tx_bytes],
            rx_pkts=[s.rx_pkts], tx_pkts=[s.tx_pkts],
        )

    def add_wifi(self, o: WifiObservation) -> None:
        self.extend_wifi(
            device=[o.device_id], t=[o.t], state=[int(o.state)],
            ap_id=[o.ap_id], rssi=[o.rssi_dbm],
        )

    def add_geo(self, g: GeoSample) -> None:
        self.extend_geo(device=[g.device_id], t=[g.t], col=[g.cell_col], row=[g.cell_row])

    def add_scan(self, s: ScanSummary) -> None:
        self.extend_scans(
            device=[s.device_id], t=[s.t],
            n24_all=[s.n24_all], n24_strong=[s.n24_strong],
            n5_all=[s.n5_all], n5_strong=[s.n5_strong],
        )

    def add_sighting(self, s: ScanSighting) -> None:
        self.extend_sightings(
            device=[s.device_id], t=[s.t], ap_id=[s.ap_id], rssi=[s.rssi_dbm]
        )

    def add_app_traffic(self, r: AppTrafficRecord) -> None:
        self.extend_apps(
            device=[r.device_id], day=[r.day], category=[r.category],
            cellular=[int(r.iface_cellular)], ap_id=[r.ap_id],
            col=[r.cell_col], row=[r.cell_row], rx=[r.rx_bytes], tx=[r.tx_bytes],
        )

    def add_update(self, e: UpdateEvent) -> None:
        self.extend_updates(device=[e.device_id], t=[e.t], bytes=[e.bytes])

    def add_battery(self, b: BatterySample) -> None:
        self.extend_battery(device=[b.device_id], t=[b.t],
                            level=[b.level_pct], charging=[int(b.charging)])

    # -- column-chunk appends (simulator fast path) -----------------------

    def extend_traffic(self, device, t, iface, rx, tx,
                       rx_pkts=None, tx_pkts=None) -> None:
        from repro.traces.records import MEAN_RX_PACKET_BYTES, MEAN_TX_PACKET_BYTES

        rx_arr = _f64(rx)
        tx_arr = _f64(tx)
        if rx_pkts is None:
            rx_pkts = np.ceil(rx_arr / MEAN_RX_PACKET_BYTES)
        if tx_pkts is None:
            tx_pkts = np.ceil(tx_arr / MEAN_TX_PACKET_BYTES)
        self._extend("traffic", device=_i32(device), t=_i32(t),
                     iface=_i8(iface), rx=rx_arr, tx=tx_arr,
                     rx_pkts=_i64(rx_pkts), tx_pkts=_i64(tx_pkts))

    def extend_wifi(self, device, t, state, ap_id, rssi) -> None:
        self._extend("wifi", device=_i32(device), t=_i32(t), state=_i8(state),
                     ap_id=_i32(ap_id), rssi=_f32(rssi))

    def extend_geo(self, device, t, col, row) -> None:
        self._extend("geo", device=_i32(device), t=_i32(t),
                     col=_i16(col), row=_i16(row))

    def extend_scans(self, device, t, n24_all, n24_strong, n5_all, n5_strong) -> None:
        self._extend("scans", device=_i32(device), t=_i32(t),
                     n24_all=_i16(n24_all), n24_strong=_i16(n24_strong),
                     n5_all=_i16(n5_all), n5_strong=_i16(n5_strong))

    def extend_sightings(self, device, t, ap_id, rssi) -> None:
        self._extend("sightings", device=_i32(device), t=_i32(t),
                     ap_id=_i32(ap_id), rssi=_f32(rssi))

    def extend_apps(self, device, day, category, cellular, ap_id, col, row, rx, tx) -> None:
        self._extend("apps", device=_i32(device), day=_i16(day),
                     category=_i8(category), cellular=_i8(cellular),
                     ap_id=_i32(ap_id), col=_i16(col), row=_i16(row),
                     rx=_f64(rx), tx=_f64(tx))

    def extend_updates(self, device, t, bytes) -> None:
        self._extend("updates", device=_i32(device), t=_i32(t), bytes=_f64(bytes))

    def extend_battery(self, device, t, level, charging) -> None:
        self._extend("battery", device=_i32(device), t=_i32(t),
                     level=_f32(level), charging=_i8(charging))

    def _extend(self, table: str, **columns: np.ndarray) -> None:
        lengths = {len(c) for c in columns.values()}
        if len(lengths) > 1:
            raise SchemaError(f"ragged chunk for table {table!r}")
        self._chunks[table].append(columns)

    # -- chunk introspection & merge (engine merge layer) -----------------

    def table_names(self) -> Tuple[str, ...]:
        """Names of every table this builder accumulates."""
        return tuple(self._chunks)

    def iter_chunks(self, table: str) -> Iterator[Mapping[str, np.ndarray]]:
        """Yield ``table``'s accumulated column chunks in append order."""
        try:
            chunks = self._chunks[table]
        except KeyError:
            raise SchemaError(f"unknown table {table!r}") from None
        yield from chunks

    def export_chunks(self) -> Dict[str, List[Dict[str, np.ndarray]]]:
        """Snapshot every table's chunks (picklable; arrays not copied)."""
        return {
            table: [dict(chunk) for chunk in chunks]
            for table, chunks in self._chunks.items()
        }

    def merge_chunks(
        self, chunks: Mapping[str, Sequence[Mapping[str, np.ndarray]]]
    ) -> None:
        """Append another builder's exported chunks, table by table.

        Chunk order is preserved, so merging shard-local builders in
        canonical shard order reproduces the row order a single builder
        would have seen.

        Zero-copy: the column arrays are adopted by reference, not
        copied — callers may pass read-only views over attached
        shared-memory transport segments and the builder holds those
        views until :meth:`build` concatenates them into owned arrays.
        """
        for table, chunk_list in chunks.items():
            if table not in self._chunks:
                raise SchemaError(f"unknown table {table!r}")
            for chunk in chunk_list:
                self._extend(table, **chunk)

    def observed_ap_ids(self) -> Set[int]:
        """AP ids observed in any accumulated chunk (negative = no AP)."""
        observed: Set[int] = set()
        for chunks in self._chunks.values():
            for chunk in chunks:
                ap_ids = chunk.get("ap_id")
                if ap_ids is None:
                    continue
                unique = np.unique(np.asarray(ap_ids))
                observed.update(int(a) for a in unique if a >= 0)
        return observed

    # -- freeze -----------------------------------------------------------

    def build(self) -> CampaignDataset:
        """Freeze into an immutable, (device, t)-sorted dataset."""
        tables = {}
        for name, chunks in self._chunks.items():
            tables[name] = self._concat(name, chunks)
        self._validate_ranges(tables)
        return CampaignDataset(
            year=self.year,
            axis=self.axis,
            devices=list(self.devices),
            ap_directory=dict(self.ap_directory),
            traffic=tables["traffic"],
            wifi=tables["wifi"],
            geo=tables["geo"],
            scans=tables["scans"],
            sightings=tables["sightings"],
            apps=tables["apps"],
            updates=tables["updates"],
            battery=tables["battery"],
            ground_truth=self.ground_truth,
        )

    def _concat(self, name: str, chunks: List[Dict[str, np.ndarray]]) -> _Table:
        if not chunks:
            return _Table({col: np.array([], dtype=dt) for col, dt in _EMPTY_DTYPES[name]})
        names = list(chunks[0])
        for chunk in chunks:
            if list(chunk) != names:
                raise SchemaError(f"inconsistent columns in table {name!r}")
        columns = {
            col: np.concatenate([chunk[col] for chunk in chunks]) for col in names
        }
        table = _Table(columns)
        sort_key = "t" if "t" in columns else "day"
        order = np.lexsort((table.columns[sort_key], table.columns["device"]))
        return table.select(order)

    def _validate_ranges(self, tables: Dict[str, _Table]) -> None:
        n_slots = self.axis.n_slots
        n_dev = len(self.devices)
        for name, table in tables.items():
            if len(table) == 0:
                continue
            if table.device.min() < 0 or table.device.max() >= n_dev:
                raise SchemaError(f"table {name!r} references unknown device")
            key = "t" if "t" in table.columns else "day"
            limit = n_slots if key == "t" else self.axis.n_days
            if table.columns[key].min() < 0 or table.columns[key].max() >= limit:
                raise SchemaError(f"table {name!r} has out-of-range {key}")


_EMPTY_DTYPES = {
    "traffic": [("device", np.int32), ("t", np.int32), ("iface", np.int8),
                ("rx", np.float64), ("tx", np.float64),
                ("rx_pkts", np.int64), ("tx_pkts", np.int64)],
    "wifi": [("device", np.int32), ("t", np.int32), ("state", np.int8),
             ("ap_id", np.int32), ("rssi", np.float32)],
    "geo": [("device", np.int32), ("t", np.int32), ("col", np.int16),
            ("row", np.int16)],
    "scans": [("device", np.int32), ("t", np.int32), ("n24_all", np.int16),
              ("n24_strong", np.int16), ("n5_all", np.int16), ("n5_strong", np.int16)],
    "sightings": [("device", np.int32), ("t", np.int32), ("ap_id", np.int32),
                  ("rssi", np.float32)],
    "apps": [("device", np.int32), ("day", np.int16), ("category", np.int8),
             ("cellular", np.int8), ("ap_id", np.int32), ("col", np.int16),
             ("row", np.int16), ("rx", np.float64), ("tx", np.float64)],
    "updates": [("device", np.int32), ("t", np.int32), ("bytes", np.float64)],
    "battery": [("device", np.int32), ("t", np.int32), ("level", np.float32),
                ("charging", np.int8)],
}


def _i8(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int8)


def _i16(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int16)


def _i32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int32)


def _f32(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float32)


def _f64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.float64)


def _i64(x) -> np.ndarray:
    return np.asarray(x, dtype=np.int64)
