"""Reusable query helpers over campaign tables.

Several analyses need the same joins: look up a device's 5 km cell at a
given slot, attach the associated AP to a traffic row, or group rows by
(device, day). These helpers centralize the sorted composite-key machinery
(`device * n_slots + t`) the columnar layout makes fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.errors import AnalysisError
from repro.traces.dataset import CampaignDataset
from repro.traces.records import WifiStateCode


def composite_keys(device: np.ndarray, t: np.ndarray, n_slots: int) -> np.ndarray:
    """Sortable (device, slot) composite keys."""
    return device.astype(np.int64) * n_slots + t.astype(np.int64)


@dataclass(frozen=True)
class SlotIndex:
    """A sorted (device, t) index over one table, for O(log n) lookups."""

    keys: np.ndarray  # sorted composite keys
    order: np.ndarray  # argsort of the source rows
    n_slots: int

    @classmethod
    def build(
        cls, device: np.ndarray, t: np.ndarray, n_slots: int
    ) -> "SlotIndex":
        keys = composite_keys(device, t, n_slots)
        order = np.argsort(keys)
        return cls(keys=keys[order], order=order, n_slots=n_slots)

    def lookup(
        self, device: np.ndarray, t: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Positions (into the *sorted* source) and a found mask."""
        want = composite_keys(device, t, self.n_slots)
        if len(self.keys) == 0:
            return np.zeros(len(want), dtype=np.int64), np.zeros(len(want), bool)
        pos = np.searchsorted(self.keys, want)
        pos = np.clip(pos, 0, len(self.keys) - 1)
        return pos, self.keys[pos] == want

    def gather(self, column: np.ndarray, pos: np.ndarray) -> np.ndarray:
        """Values of a source-table ``column`` at sorted positions ``pos``."""
        return column[self.order][pos]


def geo_cell_index(dataset: CampaignDataset) -> SlotIndex:
    """Index for joining (device, t) to the geolocation table."""
    geo = dataset.geo
    if len(geo) == 0:
        raise AnalysisError("dataset has no geolocation records")
    return SlotIndex.build(geo.device, geo.t, dataset.n_slots)


def association_index(dataset: CampaignDataset) -> Tuple[SlotIndex, np.ndarray]:
    """Index over associated wifi rows plus their (sorted-order) ap ids."""
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    index = SlotIndex.build(wifi.device[assoc], wifi.t[assoc], dataset.n_slots)
    ap_sorted = wifi.ap_id[assoc][index.order].astype(np.int64)
    return index, ap_sorted


def device_day_of(t: np.ndarray) -> np.ndarray:
    """Campaign-day index for slot column ``t``."""
    return t // SAMPLES_PER_DAY


def hour_of(t: np.ndarray) -> np.ndarray:
    """Absolute campaign-hour index (0..n_days*24-1) for slot column ``t``."""
    return t // SAMPLES_PER_HOUR


def hour_of_day(t: np.ndarray) -> np.ndarray:
    """Hour of day (0..23) for slot column ``t``."""
    return (t % SAMPLES_PER_DAY) // SAMPLES_PER_HOUR


def distinct_cells_per_device_day(dataset: CampaignDataset) -> np.ndarray:
    """(n_devices, n_days) count of distinct 5 km cells visited."""
    geo = dataset.geo
    if len(geo) == 0:
        raise AnalysisError("dataset has no geolocation records")
    day = device_day_of(geo.t.astype(np.int64))
    # Pack (device, day, col, row) and count unique cells per (device, day).
    quads = np.stack(
        [geo.device.astype(np.int64), day,
         geo.col.astype(np.int64), geo.row.astype(np.int64)],
        axis=1,
    )
    distinct = np.unique(quads, axis=0)
    out = np.zeros((dataset.n_devices, dataset.n_days), dtype=np.int64)
    np.add.at(out, (distinct[:, 0], distinct[:, 1]), 1)
    return out
