"""Trace schema, dataset container, I/O, and cleaning.

This package defines the measurement data model shared by the collection
substrate (which produces records), the simulator (which fills datasets), and
the analysis pipeline (which consumes them).
"""

from repro.traces.records import (
    IfaceKind,
    WifiStateCode,
    NetLocation,
    DeviceInfo,
    TrafficSample,
    WifiObservation,
    GeoSample,
    ScanSummary,
    ScanSighting,
    AppTrafficRecord,
    BatterySample,
    UpdateEvent,
    ApDirectoryEntry,
)
from repro.traces.dataset import CampaignDataset, DatasetBuilder, GroundTruth
from repro.traces.io import save_dataset, load_dataset
from repro.traces.cleaning import (
    drop_update_window,
    drop_tethering,
    CleaningReport,
    clean_for_main_analysis,
)
from repro.traces.validate import validate_dataset

__all__ = [
    "IfaceKind",
    "WifiStateCode",
    "NetLocation",
    "DeviceInfo",
    "TrafficSample",
    "WifiObservation",
    "GeoSample",
    "ScanSummary",
    "ScanSighting",
    "AppTrafficRecord",
    "BatterySample",
    "UpdateEvent",
    "ApDirectoryEntry",
    "CampaignDataset",
    "DatasetBuilder",
    "GroundTruth",
    "save_dataset",
    "load_dataset",
    "drop_update_window",
    "drop_tethering",
    "CleaningReport",
    "clean_for_main_analysis",
    "validate_dataset",
]
