"""Soft bandwidth cap (§1, §3.8).

Japanese cellular providers limit a user's bandwidth (e.g. to 128 kbps)
during peak hours for a few days once the previous three days' download
volume exceeds a threshold (typically 1 GB). Two providers relaxed the
policy in February 2015, which the 2015 campaign config expresses with a
higher throttled rate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Deque, Tuple
from collections import deque

import numpy as np

from repro.constants import (
    CAP_LIMIT_BPS,
    CAP_THRESHOLD_BYTES,
    CAP_WINDOW_DAYS,
    SAMPLE_PERIOD_SECONDS,
    SAMPLES_PER_DAY,
    SAMPLES_PER_HOUR,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SoftCapPolicy:
    """One carrier-year's soft-cap parameters."""

    threshold_bytes: float = float(CAP_THRESHOLD_BYTES)
    window_days: int = CAP_WINDOW_DAYS
    limit_bps: float = float(CAP_LIMIT_BPS)
    #: Hours of day during which the throttle applies (peak hours).
    peak_hours: Tuple[int, ...] = (8, 12, 18, 19, 20, 21, 22, 23)
    #: Days the throttle lasts once triggered.
    penalty_days: int = 2

    def __post_init__(self) -> None:
        if self.threshold_bytes <= 0:
            raise ConfigurationError("cap threshold must be positive")
        if self.window_days < 1:
            raise ConfigurationError("cap window must be >= 1 day")
        if self.limit_bps <= 0:
            raise ConfigurationError("cap limit must be positive")
        if not all(0 <= h < 24 for h in self.peak_hours):
            raise ConfigurationError("peak hours must be in 0..23")

    @property
    def limit_bytes_per_slot(self) -> float:
        """Maximum bytes a throttled device moves in one 10-minute slot."""
        return self.limit_bps * SAMPLE_PERIOD_SECONDS / 8.0


@lru_cache(maxsize=None)
def throttled_slot_limits(policy: SoftCapPolicy) -> np.ndarray:
    """Per-slot byte limits for one *throttled* day under ``policy``.

    A read-only length-144 array: the policy's slot limit during peak
    hours, inf elsewhere — exactly ``slot_limit(hour)`` with the throttle
    active. Policies are frozen dataclasses, so one table per distinct
    policy serves the whole campaign instead of being rebuilt for every
    device-day.
    """
    hours = np.arange(SAMPLES_PER_DAY) // SAMPLES_PER_HOUR
    limits = np.full(SAMPLES_PER_DAY, float("inf"))
    limits[np.isin(hours, policy.peak_hours)] = policy.limit_bytes_per_slot
    limits.setflags(write=False)
    return limits


@dataclass
class SoftCapTracker:
    """Tracks one device's rolling download volume and throttle state.

    Drive it day by day: query :meth:`potentially_capped` before the day
    (it reflects the previous ``window_days``), add the day's realized
    cellular download with :meth:`record_day`.
    """

    policy: SoftCapPolicy
    _window: Deque[float] = field(default_factory=deque)
    _penalty_left: int = 0

    def potentially_capped(self) -> bool:
        """Whether the previous window exceeded the threshold (§3.8)."""
        return sum(self._window) > self.policy.threshold_bytes

    def throttled_today(self) -> bool:
        """Whether the throttle is active today."""
        return self._penalty_left > 0 or self.potentially_capped()

    def slot_limit(self, hour: int) -> float:
        """Byte limit for a slot at ``hour`` today (inf when unthrottled)."""
        if self.throttled_today() and hour in self.policy.peak_hours:
            return self.policy.limit_bytes_per_slot
        return float("inf")

    def window_total(self) -> float:
        """Download bytes accumulated over the current window."""
        return float(sum(self._window))

    def record_day(self, cellular_rx_bytes: float) -> None:
        """Record a finished day's cellular download volume."""
        if cellular_rx_bytes < 0:
            raise ConfigurationError("cellular volume must be >= 0")
        was_over = self.potentially_capped()
        self._window.append(cellular_rx_bytes)
        while len(self._window) > self.policy.window_days:
            self._window.popleft()
        if was_over:
            self._penalty_left = max(self._penalty_left - 1, 0)
        if self.potentially_capped():
            self._penalty_left = self.policy.penalty_days
