"""Campaign simulator: devices, traffic, caps, campaigns, the 3-year study."""

from repro.simulation.cap import SoftCapPolicy, SoftCapTracker
from repro.simulation.params import SimParams
from repro.simulation.device import DeviceSimulator
from repro.simulation.campaign import CampaignConfig, run_campaign
from repro.simulation.study import StudyConfig, Study, default_campaign_config

__all__ = [
    "SoftCapPolicy",
    "SoftCapTracker",
    "SimParams",
    "DeviceSimulator",
    "CampaignConfig",
    "run_campaign",
    "StudyConfig",
    "Study",
    "default_campaign_config",
]
