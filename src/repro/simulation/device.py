"""Per-device campaign simulation.

One :class:`DeviceSimulator` walks a single participant through every
10-minute slot of a campaign: where they are (mobility), whether the WiFi
interface is on (policy, rest days), which AP they associate with
(environment + credentials), how much traffic moves on each interface
(demand, WiFi uplift, home cellular leak, soft cap), and what the
measurement agent records for all of it.

Everything the agent can observe is appended to a
:class:`~repro.traces.dataset.DatasetBuilder` in column chunks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.apps.demand import DemandModel
from repro.apps.updates import UpdateModel
from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.errors import ConfigurationError
from repro.geo.coords import cell_index
from repro.mobility.model import DayMobility, MobilityModel
from repro.mobility.schedule import LocationState
from repro.net.accesspoint import APType
from repro.net.cellular import CellularNetwork
from repro.network_env.deployment import Deployment
from repro.network_env.public_wifi import PROVIDER_ESSIDS
from repro.population.profiles import UserProfile, WifiPolicy
from repro.radio.pathloss import PathLossModel, RssiModel
from repro.simulation.cap import SoftCapTracker, throttled_slot_limits
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import DeviceOS, IfaceKind, WifiStateCode

_ESSID_CARRIER: Dict[str, Optional[str]] = {
    essid: carrier for essid, _, carrier in PROVIDER_ESSIDS
}

_HOURS = np.arange(SAMPLES_PER_DAY) // SAMPLES_PER_HOUR

_STATE_CODES = tuple(int(s) for s in LocationState)

_HOME_RSSI_MODEL = RssiModel(
    tx_power_dbm=16.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=3.0
)
_OFFICE_RSSI_MODEL = RssiModel(
    tx_power_dbm=16.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=3.5
)
_PUBLIC_RSSI_MODEL = RssiModel(
    tx_power_dbm=17.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=5.0
)


@dataclass
class _Columns:
    """Scratch column accumulators for one device."""

    traffic: List[Tuple[np.ndarray, ...]]
    wifi: List[Tuple[np.ndarray, ...]]
    geo: List[Tuple[np.ndarray, ...]]
    scans: List[Tuple[np.ndarray, ...]]
    sightings: List[Tuple[np.ndarray, ...]]
    apps: List[Tuple[np.ndarray, ...]]
    updates: List[Tuple[int, float]]
    battery: List[Tuple[np.ndarray, ...]]


@dataclass
class _DayTraffic:
    """Per-slot volumes split by interface for one day."""

    rx_wifi: np.ndarray
    tx_wifi: np.ndarray
    rx_cell: np.ndarray
    tx_cell: np.ndarray


class DeviceSimulator:
    """Simulates one participant for a whole campaign."""

    def __init__(
        self,
        profile: UserProfile,
        axis: TimeAxis,
        deployment: Deployment,
        demand: DemandModel,
        params: SimParams,
        update_model: Optional[UpdateModel],
        rng: np.random.Generator,
        kernel: str = "batch",
    ) -> None:
        if kernel not in ("batch", "legacy"):
            raise ConfigurationError(
                f"unknown kernel {kernel!r}; expected 'batch' or 'legacy'"
            )
        self.kernel = kernel
        self.profile = profile
        self.axis = axis
        self.deployment = deployment
        self.demand = demand
        self.params = params
        self.update_model = update_model
        self.rng = rng
        self.mobility = MobilityModel(profile, axis, rng)
        self.cap = SoftCapTracker(params.cap_policy)
        #: Whether this device drops WiFi while the owner sleeps. Android's
        #: legacy WiFi sleep policy makes this far more common there, which
        #: is part of the §3.3.4 iOS-vs-Android connectivity gap.
        sleep_p = 0.60 if profile.os is DeviceOS.ANDROID else 0.30
        self.sleep_disconnects = rng.random() < sleep_p
        #: Battery state carried across days (percent).
        self._battery_level = float(rng.uniform(55.0, 100.0))
        #: Habitual device<->router signal at home/office (stable per user).
        self._home_rssi_base = self._draw_base_rssi(APType.HOME)
        self._office_rssi_base = self._draw_base_rssi(APType.OFFICE)
        self._tx_frac_wifi = demand.tx_fraction(profile.mix, on_wifi=True)
        self._tx_frac_cell = demand.tx_fraction(profile.mix, on_wifi=False)
        self._cell_iface = int(IfaceKind.from_technology(profile.technology))
        #: Per-slot ceiling from the radio link itself (3G bites, LTE rarely).
        network = CellularNetwork(profile.technology, profile.carrier)
        self._cell_slot_capacity = network.capacity_bytes(600.0)

    # ------------------------------------------------------------------

    def run(self, builder: DatasetBuilder) -> None:
        """Simulate every campaign day and append records to ``builder``."""
        for name, columns in self._collect_impl().items():
            getattr(builder, f"extend_{name}")(**columns)

    def collect(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Simulate the campaign and return this device's records as columns.

        The result maps table name to named column arrays (the keyword
        arguments of the matching ``DatasetBuilder.extend_*`` method). This
        is the raw on-device record store the collection pipeline uploads
        from; :meth:`run` is the equivalent direct bulk append.

        .. deprecated::
            ``DeviceSimulator`` is a single-device compatibility wrapper;
            new code should call
            :func:`repro.simulation.kernel.simulate_devices`, which
            simulates whole shards through the columnar batch kernel.
            Migration: replace per-device ``DeviceSimulator(...).collect()``
            loops with one ``simulate_devices(profiles, axis, deployment,
            demand, params, seed=..., year=...)`` call and read
            ``DeviceResult.tables`` (the same table-name → column-arrays
            mapping). By default this method already routes through the
            batch kernel; construct with ``kernel="legacy"`` for the old
            scalar per-day path (kept for one release).
        """
        import warnings

        warnings.warn(
            "DeviceSimulator.collect() is deprecated; use "
            "repro.simulation.kernel.simulate_devices for whole shards "
            "(see the method docstring for the migration recipe)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._collect_impl()

    def _collect_impl(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Dispatch to the selected kernel (no deprecation warning)."""
        if self.kernel == "batch":
            return self._collect_batch()
        cols = _Columns([], [], [], [], [], [], [], [])
        for day in range(self.axis.n_days):
            self._simulate_day(day, cols)
        return self._tables(cols)

    def _collect_batch(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Run this one device through the columnar batch kernel.

        The caller-supplied ``rng`` becomes the device's kernel stream (so
        two wrappers with the same generator state agree), the explicit
        ``update_model`` is honored (``None`` disables updates, exactly as
        the scalar path treats it), and the kernel's per-day cap decisions
        are replayed into :attr:`cap` so callers inspecting throttle state
        see what the device experienced.
        """
        # Imported here: kernel.py imports this module's RSSI tables, so a
        # module-level import would cycle.
        from repro.simulation.kernel import simulate_devices

        device_id = self.profile.user_id
        result = next(simulate_devices(
            {device_id: self.profile}, self.axis, self.deployment,
            self.demand, self.params,
            seed=0, year=0,  # unused: rng_for overrides the stream
            device_ids=[device_id],
            rng_for=lambda _device_id: self.rng,
            update_model=self.update_model,
        ))
        for rx_cell in result.day_rx_cell:
            self.cap.record_day(float(rx_cell))
        return result.tables

    # ------------------------------------------------------------------

    def _simulate_day(self, day: int, cols: _Columns) -> None:
        rng = self.rng
        profile = self.profile
        mobility = self.mobility.day(day, rng)
        states = mobility.states.astype(np.int64)
        weekday = int(self.axis.weekday_of(day * SAMPLES_PER_DAY))
        weekend = weekday >= 5

        rest_factor = 1.15 if profile.os is DeviceOS.ANDROID else 0.55
        rest_day = rng.random() < self.params.rest_day_p * rest_factor
        wifi_on = self._interface_on(states, rest_day)
        assoc_ap, assoc_rssi = self._associations(states, wifi_on, mobility, rng)
        if self.sleep_disconnects:
            asleep = (_HOURS >= 2) & (_HOURS < 6)
            assoc_ap = np.where(asleep, -1, assoc_ap)
        on_wifi = assoc_ap >= 0

        volumes = self._traffic(mobility, on_wifi, rng)

        # Soft bandwidth cap: capped users cut their cellular use (§3.8),
        # and the carrier throttles peak-hour download on top of that.
        if self.cap.throttled_today():
            volumes.rx_cell = volumes.rx_cell * self.params.cap_demand_response
            volumes.tx_cell = volumes.tx_cell * self.params.cap_demand_response
            # Cached per-policy table: slot_limit(hour) for a throttled
            # day, hoisted out of the per-device-day loop.
            limits = np.minimum(
                throttled_slot_limits(self.params.cap_policy),
                self._cell_slot_capacity,
            )
        else:
            # Unthrottled, slot_limit is inf everywhere: only the radio
            # link's own per-slot capacity binds.
            limits = self._cell_slot_capacity
        volumes.rx_cell = np.minimum(volumes.rx_cell, limits)

        update_bytes = self._maybe_update(day, weekend, on_wifi, cols, rng)
        if update_bytes is not None:
            volumes.rx_wifi = volumes.rx_wifi + update_bytes

        self._emit_traffic(day, volumes, cols)
        self._emit_wifi_obs(day, wifi_on, assoc_ap, assoc_rssi, cols)
        cells = self._emit_geo(day, states, mobility, cols)
        self._emit_battery(day, states, mobility, wifi_on, on_wifi, cols, rng)
        if profile.os is DeviceOS.ANDROID:
            self._emit_scans(day, states, wifi_on, cells, cols, rng)
            self._emit_apps(day, states, assoc_ap, cells, volumes, cols, rng)

        self.cap.record_day(float(volumes.rx_cell.sum()))

    # ------------------------------------------------------------------
    # Interface policy and association
    # ------------------------------------------------------------------

    def _interface_on(self, states: np.ndarray, rest_day: bool) -> np.ndarray:
        policy = self.profile.wifi_policy
        if policy is WifiPolicy.ALWAYS_OFF:
            return np.zeros(SAMPLES_PER_DAY, dtype=bool)
        if policy is WifiPolicy.NO_CONFIG:
            # On but never associated; rest days do not apply (nothing to
            # forget — the interface just stays enabled).
            return np.ones(SAMPLES_PER_DAY, dtype=bool)
        if rest_day:
            return np.zeros(SAMPLES_PER_DAY, dtype=bool)
        if policy is WifiPolicy.ALWAYS_ON:
            return np.ones(SAMPLES_PER_DAY, dtype=bool)
        # DAYTIME_OFF: on at home (given a home AP) and at the office when
        # the workplace offers an AP the user configured.
        on = np.zeros(SAMPLES_PER_DAY, dtype=bool)
        if self.profile.has_home_ap:
            on |= states == int(LocationState.HOME)
        if self.profile.office_has_ap:
            on |= states == int(LocationState.WORK)
        return on

    def _associations(
        self,
        states: np.ndarray,
        wifi_on: np.ndarray,
        mobility: DayMobility,
        rng: np.random.Generator,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-slot associated ap_id (-1 when none) and observed RSSI."""
        profile = self.profile
        assoc = np.full(SAMPLES_PER_DAY, -1, dtype=np.int64)
        rssi = np.zeros(SAMPLES_PER_DAY, dtype=np.float64)
        if profile.wifi_policy in (WifiPolicy.ALWAYS_OFF, WifiPolicy.NO_CONFIG):
            return assoc, rssi

        at_home = (states == int(LocationState.HOME)) & wifi_on
        if profile.home_ap_id >= 0 and at_home.any():
            attached = self._delayed_attach(at_home, rng)
            assoc[attached] = profile.home_ap_id
            rssi[attached] = self._home_rssi_base + rng.normal(
                0.0, self.params.rssi_obs_sigma, int(attached.sum())
            )

        at_work = (states == int(LocationState.WORK)) & wifi_on
        if profile.office_ap_id >= 0 and at_work.any():
            assoc[at_work] = profile.office_ap_id
            rssi[at_work] = self._office_rssi_base + rng.normal(
                0.0, self.params.rssi_obs_sigma, int(at_work.sum())
            )

        self._venue_associations(states, wifi_on, assoc, rssi, mobility, rng)
        self._commute_associations(states, wifi_on, assoc, rssi, mobility, rng)

        if profile.mobile_ap_id >= 0:
            away = (states != int(LocationState.HOME)) & wifi_on & (assoc < 0)
            # The pocket router travels along most days.
            if away.any() and rng.random() < 0.75:
                base = self._draw_base_rssi(APType.MOBILE)
                assoc[away] = profile.mobile_ap_id
                rssi[away] = base + rng.normal(
                    0.0, self.params.rssi_obs_sigma, int(away.sum())
                )
        return assoc, rssi

    def _delayed_attach(self, at_home: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Shift home-association starts late (people don't race the router).

        The midnight-spanning segment (slot 0) is a continuation of the
        previous evening, so no delay applies there.
        """
        delay_slots_mean = self.params.home_attach_delay_h * SAMPLES_PER_HOUR
        attached = at_home.copy()
        padded = np.concatenate(([False], at_home))
        starts = np.flatnonzero(~padded[:-1] & at_home)
        for start in starts:
            if start == 0:
                continue
            delay = int(rng.exponential(delay_slots_mean))
            if delay > 0:
                attached[start:start + delay] = False
        return attached

    def _venue_associations(self, states, wifi_on, assoc, rssi, mobility, rng) -> None:
        profile = self.profile
        params = self.params
        for start, end in _segments(states, int(LocationState.PUBLIC_VENUE)):
            if not wifi_on[start:end].any():
                continue
            ap_id = None
            if profile.public_enrolled:
                n24, n5 = self.deployment.public_density(mobility.venue_point)
                density = (n24 + n5) * params.scan_scale
                p = params.venue_assoc_p * (1.0 - np.exp(-density / 40.0))
                if rng.random() < p:
                    ap_id = self._pick_venue_ap(mobility.venue_point, rng, public=True)
            if ap_id is None and profile.wifi_policy is WifiPolicy.ALWAYS_ON:
                if rng.random() < params.open_assoc_p:
                    familiar = self.deployment.familiar_open_aps.get(profile.user_id)
                    if familiar:
                        ap_id = int(rng.choice(familiar))
                    else:
                        ap_id = self._pick_venue_ap(
                            mobility.venue_point, rng, public=False
                        )
            if ap_id is None:
                continue
            length = max(1, min(end - start, 1 + int(rng.geometric(0.35))))
            offset = start if end - start <= length else int(
                rng.integers(start, end - length + 1)
            )
            span = slice(offset, offset + length)
            base = self._draw_base_rssi(self.deployment.ap(ap_id).ap_type)
            assoc[span] = ap_id
            rssi[span] = base + rng.normal(0.0, self.params.rssi_obs_sigma, length)

    def _commute_associations(self, states, wifi_on, assoc, rssi, mobility, rng) -> None:
        profile = self.profile
        if not profile.public_enrolled:
            return
        p = self.params.commute_assoc_p * profile.commute_public_exposure
        for start, end in _segments(states, int(LocationState.COMMUTE)):
            if not wifi_on[start:end].any() or rng.random() >= p * (end - start):
                continue
            ap_id = self._pick_venue_ap(mobility.commute_point, rng, public=True)
            if ap_id is None:
                continue
            length = min(end - start, 1 + int(rng.random() < 0.35))
            span = slice(start, start + length)
            base = self._draw_base_rssi(APType.PUBLIC)
            assoc[span] = ap_id
            rssi[span] = base + rng.normal(0.0, self.params.rssi_obs_sigma, length)

    def _pick_venue_ap(
        self, coord, rng: np.random.Generator, public: bool
    ) -> Optional[int]:
        candidates = self.deployment.venue_aps_near(coord)
        if not candidates:
            return None
        carrier = self.profile.carrier.name
        usable = []
        for ap_id in candidates:
            ap = self.deployment.ap(ap_id)
            if public:
                if ap.ap_type is not APType.PUBLIC:
                    continue
                restriction = _ESSID_CARRIER.get(ap.essid)
                if restriction is not None and restriction != carrier:
                    continue
            elif ap.ap_type is not APType.OPEN:
                continue
            usable.append(ap_id)
        if not usable:
            return None
        return int(usable[int(rng.integers(0, len(usable)))])

    def _draw_base_rssi(self, ap_type: APType) -> float:
        params = self.params
        medians = {
            APType.HOME: params.home_distance_m,
            APType.OFFICE: params.office_distance_m,
            APType.PUBLIC: params.public_distance_m,
            APType.OPEN: params.public_distance_m,
            APType.MOBILE: 2.0,
        }
        distance = medians[ap_type] * float(
            np.exp(self.rng.normal(0.0, params.distance_sigma))
        )
        models = {
            APType.HOME: _HOME_RSSI_MODEL,
            APType.OFFICE: _OFFICE_RSSI_MODEL,
            APType.PUBLIC: _PUBLIC_RSSI_MODEL,
            APType.OPEN: _PUBLIC_RSSI_MODEL,
            APType.MOBILE: _HOME_RSSI_MODEL,
        }
        return models[ap_type].sample(distance, self.rng)

    # ------------------------------------------------------------------
    # Traffic
    # ------------------------------------------------------------------

    def _traffic(
        self,
        mobility: DayMobility,
        on_wifi: np.ndarray,
        rng: np.random.Generator,
    ) -> _DayTraffic:
        params = self.params
        profile = self.profile
        day_factor = float(np.exp(rng.normal(0.0, params.day_sigma)))
        weights = mobility.activity
        total_weight = weights.sum()
        if total_weight <= 0:
            base = np.zeros(SAMPLES_PER_DAY)
        else:
            base = weights / total_weight * profile.appetite_bytes * day_factor
        background = rng.exponential(params.background_bytes, SAMPLES_PER_DAY)
        demand = base + background

        rx_wifi = np.where(on_wifi, demand * params.wifi_uplift, 0.0)
        rx_cell = np.where(on_wifi, 0.0, demand)

        # At home on WiFi some traffic still leaks to cellular.
        leak = profile.home_cell_leak
        rx_cell = rx_cell + rx_wifi * leak
        rx_wifi = rx_wifi * (1.0 - leak)

        if profile.cellular_data_off:
            rx_cell = rx_cell * params.data_off_cell_factor

        tx_wifi = rx_wifi * self._tx_frac_wifi * np.exp(
            rng.normal(0.0, 0.3, SAMPLES_PER_DAY)
        )
        tx_cell = rx_cell * self._tx_frac_cell * np.exp(
            rng.normal(0.0, 0.3, SAMPLES_PER_DAY)
        )

        evening = (_HOURS >= 19) | (_HOURS <= 1)
        wifi_evening = on_wifi & evening

        # Upload-heavy WiFi-only sync bursts (online storage, §3.6).
        sync_slots = wifi_evening & (
            rng.random(SAMPLES_PER_DAY) < params.sync_burst_p
        )
        n_sync = int(sync_slots.sum())
        if n_sync:
            burst = params.sync_burst_mb * 1e6 * rng.lognormal(0.0, 0.8, n_sync)
            tx_wifi[sync_slots] += burst * 0.85
            rx_wifi[sync_slots] += burst * 0.15

        # Download-heavy WiFi binges (video/bulk downloads on free networks).
        # Propensity is per-user and heavy-tailed; daytime binges happen at
        # a reduced rate (lunch video, public-WiFi streaming).
        p_binge = min(0.25, params.binge_burst_p * self.profile.binge_propensity)
        binge_rate = np.where(evening, p_binge, p_binge * 0.4)
        binge_slots = on_wifi & (rng.random(SAMPLES_PER_DAY) < binge_rate)
        n_binge = int(binge_slots.sum())
        if n_binge:
            burst = params.binge_mb * 1e6 * rng.lognormal(0.0, 1.2, n_binge)
            rx_wifi[binge_slots] += burst * 0.92
            # Bulk downloads still generate ACK/metadata upload.
            tx_wifi[binge_slots] += burst * 0.08

        return _DayTraffic(rx_wifi, tx_wifi, rx_cell, tx_cell)

    def _maybe_update(
        self,
        day: int,
        weekend: bool,
        on_wifi: np.ndarray,
        cols: _Columns,
        rng: np.random.Generator,
    ) -> Optional[np.ndarray]:
        """Roll the iOS update; returns extra per-slot WiFi RX if taken."""
        if self.update_model is None or self.profile.os is not DeviceOS.IOS:
            return None
        wifi_hours = float(on_wifi.sum()) / SAMPLES_PER_HOUR
        took_update = self.update_model.maybe_update(
            self.profile.user_id, day, weekend, wifi_hours, rng
        )
        if not took_update:
            return None
        policy = self.update_model.policy
        slots = np.flatnonzero(on_wifi)
        evening = slots[(_HOURS[slots] >= 18) | (_HOURS[slots] <= 1)]
        pool = evening if len(evening) >= 3 else slots
        start = int(pool[int(rng.integers(0, max(1, len(pool) - 2)))])
        extra = np.zeros(SAMPLES_PER_DAY)
        spread = [s for s in range(start, min(start + 3, SAMPLES_PER_DAY)) if on_wifi[s]]
        if not spread:
            spread = [start]
        for s in spread:
            extra[s] = policy.size_bytes / len(spread)
        cols.updates.append((day * SAMPLES_PER_DAY + spread[0], policy.size_bytes))
        return extra

    # ------------------------------------------------------------------
    # Record emission
    # ------------------------------------------------------------------

    def _emit_traffic(self, day: int, volumes: _DayTraffic, cols: _Columns) -> None:
        t0 = day * SAMPLES_PER_DAY
        for rx, tx, iface in (
            (volumes.rx_wifi, volumes.tx_wifi, int(IfaceKind.WIFI)),
            (volumes.rx_cell, volumes.tx_cell, self._cell_iface),
        ):
            keep = (rx + tx) >= 100.0
            if not keep.any():
                continue
            slots = np.flatnonzero(keep)
            device = np.full(len(slots), self.profile.user_id)
            iface_col = np.full(len(slots), iface)
            cols.traffic.append((device, t0 + slots, iface_col, rx[slots], tx[slots]))

    def _emit_wifi_obs(self, day, wifi_on, assoc_ap, assoc_rssi, cols) -> None:
        t0 = day * SAMPLES_PER_DAY
        profile = self.profile
        associated = assoc_ap >= 0
        if profile.os is DeviceOS.IOS:
            # iOS reports only the associated AP (§2).
            slots = np.flatnonzero(associated)
            if len(slots) == 0:
                return
            state = np.full(len(slots), int(WifiStateCode.ASSOCIATED))
            device = np.full(len(slots), profile.user_id)
            cols.wifi.append(
                (device, t0 + slots, state, assoc_ap[slots], assoc_rssi[slots])
            )
            return
        state = np.where(
            associated,
            int(WifiStateCode.ASSOCIATED),
            np.where(wifi_on, int(WifiStateCode.AVAILABLE), int(WifiStateCode.OFF)),
        )
        slots = np.arange(SAMPLES_PER_DAY)
        device = np.full(SAMPLES_PER_DAY, profile.user_id)
        cols.wifi.append((device, t0 + slots, state, assoc_ap, assoc_rssi))

    def _emit_geo(self, day, states, mobility, cols) -> Dict[int, Tuple[int, int]]:
        """Emit geolocation rows; returns the state -> cell mapping."""
        cells: Dict[int, Tuple[int, int]] = {}
        for code in _STATE_CODES:
            location = self.mobility.location_for(code, mobility)
            cells[code] = cell_index(location)
        cols_arr = np.array([cells[int(s)][0] for s in states])
        rows_arr = np.array([cells[int(s)][1] for s in states])
        t0 = day * SAMPLES_PER_DAY
        slots = np.arange(SAMPLES_PER_DAY)
        device = np.full(SAMPLES_PER_DAY, self.profile.user_id)
        cols.geo.append((device, t0 + slots, cols_arr, rows_arr))
        return cells

    def _emit_battery(
        self, day, states, mobility, wifi_on, on_wifi, cols, rng
    ) -> None:
        """Simple battery walk: drain with activity/WiFi, charge at home.

        Reported half-hourly, mirroring the agent's battery-status stream
        (§2). WiFi being on costs a little extra; scanning (on but
        unassociated) costs slightly more than being associated.
        """
        activity = mobility.activity
        norm = activity / (activity.mean() + 1e-9)
        drain = 0.05 + 0.28 * norm
        drain = drain + np.where(wifi_on, np.where(on_wifi, 0.03, 0.05), 0.0)
        at_home = states == int(LocationState.HOME)
        hours = _HOURS
        charging_window = at_home & ((hours >= 21) | (hours < 7))
        levels = np.empty(SAMPLES_PER_DAY, dtype=np.float64)
        charging = np.zeros(SAMPLES_PER_DAY, dtype=np.int8)
        level = self._battery_level
        plugged = False
        for slot_idx in range(SAMPLES_PER_DAY):
            if not plugged and charging_window[slot_idx] and (
                level < 40.0 or hours[slot_idx] >= 22 or hours[slot_idx] < 7
            ):
                plugged = True
            if plugged and (level >= 100.0 or not at_home[slot_idx]):
                plugged = False
            if plugged:
                level = min(100.0, level + 1.6)
                charging[slot_idx] = 1
            else:
                level = max(0.0, level - drain[slot_idx])
            levels[slot_idx] = level
        self._battery_level = level
        report = np.arange(0, SAMPLES_PER_DAY, 3)
        t0 = day * SAMPLES_PER_DAY
        device = np.full(len(report), self.profile.user_id)
        cols.battery.append(
            (device, t0 + report, levels[report], charging[report])
        )

    def _emit_scans(self, day, states, wifi_on, cells, cols, rng) -> None:
        """Android scan summaries (+ hourly detailed sightings)."""
        params = self.params
        state_frac = {
            int(LocationState.HOME): params.audible_frac_home,
            int(LocationState.COMMUTE): params.audible_frac_commute,
            int(LocationState.WORK): params.audible_frac_work,
            int(LocationState.PUBLIC_VENUE): params.audible_frac_venue,
            int(LocationState.OUT): params.audible_frac_commute,
        }
        density24 = np.zeros(SAMPLES_PER_DAY)
        density5 = np.zeros(SAMPLES_PER_DAY)
        for code, (col, row) in cells.items():
            n24, n5 = self.deployment.public_counts_by_cell.get((col, row), (0, 0))
            mask = states == code
            frac = state_frac[code]
            density24[mask] = n24 * params.scan_scale * frac
            density5[mask] = n5 * params.scan_scale * frac
        n_on = int(wifi_on.sum())
        if n_on == 0:
            return
        n24_all = rng.poisson(density24[wifi_on])
        n5_all = rng.poisson(density5[wifi_on])
        n24_strong = rng.binomial(n24_all, params.scan_strong_p)
        n5_strong = rng.binomial(n5_all, params.scan_strong_p)
        slots = np.flatnonzero(wifi_on)
        t0 = day * SAMPLES_PER_DAY
        device = np.full(n_on, self.profile.user_id)
        cols.scans.append((device, t0 + slots, n24_all, n24_strong, n5_all, n5_strong))

        # Hourly detailed sightings for the density analyses.
        hourly = slots[slots % params.sighting_period_slots == 0]
        sight_dev, sight_t, sight_ap, sight_rssi = [], [], [], []
        for slot in hourly:
            code = int(states[slot])
            cell = cells[code]
            candidates = self.deployment.venue_aps_by_cell.get(cell)
            if not candidates:
                continue
            lam = density24[slot] + density5[slot]
            n = min(int(rng.poisson(min(lam, 30.0))), len(candidates), 15)
            if n <= 0:
                continue
            picks = rng.choice(len(candidates), size=n, replace=False)
            for p in picks:
                sight_dev.append(self.profile.user_id)
                sight_t.append(t0 + int(slot))
                sight_ap.append(candidates[int(p)])
                sight_rssi.append(self._draw_base_rssi(APType.PUBLIC))
        if sight_dev:
            cols.sightings.append(
                (
                    np.array(sight_dev), np.array(sight_t),
                    np.array(sight_ap), np.array(sight_rssi),
                )
            )

    def _emit_apps(
        self, day, states, assoc_ap, cells, volumes: _DayTraffic, cols, rng
    ) -> None:
        """Daily per-category app records (Android only, §2)."""
        profile = self.profile
        # Cellular volume grouped by the 5 km cell it happened in.
        cell_groups: Dict[Tuple[int, int], Tuple[float, float]] = {}
        for code in _STATE_CODES:
            mask = states == code
            if not mask.any():
                continue
            rx_sum = float(volumes.rx_cell[mask].sum())
            tx_sum = float(volumes.tx_cell[mask].sum())
            if rx_sum + tx_sum < 1.0:
                continue
            cell = cells[code]
            prev_rx, prev_tx = cell_groups.get(cell, (0.0, 0.0))
            cell_groups[cell] = (prev_rx + rx_sum, prev_tx + tx_sum)
        # WiFi volume grouped by AP.
        ap_groups: Dict[int, Tuple[float, float]] = {}
        for ap_id in np.unique(assoc_ap[assoc_ap >= 0]):
            mask = assoc_ap == ap_id
            ap_groups[int(ap_id)] = (
                float(volumes.rx_wifi[mask].sum()),
                float(volumes.tx_wifi[mask].sum()),
            )

        device_rows, day_rows, cat_rows, cellular_rows = [], [], [], []
        ap_rows, col_rows, row_rows, rx_rows, tx_rows = [], [], [], [], []

        def emit(cat_splits, cellular, ap_id, cell):
            for code, cat_rx, cat_tx in cat_splits:
                if cat_rx + cat_tx < 1.0:
                    continue
                device_rows.append(profile.user_id)
                day_rows.append(day)
                cat_rows.append(code)
                cellular_rows.append(int(cellular))
                ap_rows.append(ap_id)
                col_rows.append(cell[0])
                row_rows.append(cell[1])
                rx_rows.append(cat_rx)
                tx_rows.append(cat_tx)

        for cell, (rx_sum, tx_sum) in cell_groups.items():
            splits = self.demand.split_day(profile.mix, rx_sum, tx_sum, False, rng)
            emit(_top_splits(splits), cellular=True, ap_id=-1, cell=cell)
        for ap_id, (rx_sum, tx_sum) in ap_groups.items():
            if rx_sum + tx_sum < 1.0:
                continue
            splits = self.demand.split_day(profile.mix, rx_sum, tx_sum, True, rng)
            # App traffic on WiFi is located where the AP was used; reuse the
            # cell of the first state the AP appears in.
            mask = assoc_ap == ap_id
            code = int(states[np.flatnonzero(mask)[0]])
            emit(_top_splits(splits), cellular=False, ap_id=ap_id, cell=cells[code])

        if device_rows:
            cols.apps.append(
                (
                    np.array(device_rows), np.array(day_rows), np.array(cat_rows),
                    np.array(cellular_rows), np.array(ap_rows),
                    np.array(col_rows), np.array(row_rows),
                    np.array(rx_rows), np.array(tx_rows),
                )
            )

    # ------------------------------------------------------------------

    def _tables(self, cols: _Columns) -> Dict[str, Dict[str, np.ndarray]]:
        tables: Dict[str, Dict[str, np.ndarray]] = {}

        def put(name: str, chunks, *colnames: str) -> None:
            if chunks:
                tables[name] = dict(zip(colnames, _stack(chunks)))

        put("traffic", cols.traffic, "device", "t", "iface", "rx", "tx")
        put("wifi", cols.wifi, "device", "t", "state", "ap_id", "rssi")
        put("geo", cols.geo, "device", "t", "col", "row")
        put("scans", cols.scans, "device", "t",
            "n24_all", "n24_strong", "n5_all", "n5_strong")
        put("sightings", cols.sightings, "device", "t", "ap_id", "rssi")
        put("apps", cols.apps, "device", "day", "category", "cellular",
            "ap_id", "col", "row", "rx", "tx")
        put("battery", cols.battery, "device", "t", "level", "charging")
        if cols.updates:
            t = np.array([slot for slot, _ in cols.updates], dtype=np.int64)
            size = np.array([size for _, size in cols.updates])
            tables["updates"] = dict(
                device=np.full(len(t), self.profile.user_id), t=t, bytes=size
            )
        return tables


def _stack(chunks: List[Tuple[np.ndarray, ...]]) -> Tuple[np.ndarray, ...]:
    n_cols = len(chunks[0])
    return tuple(
        np.concatenate([chunk[i] for chunk in chunks]) for i in range(n_cols)
    )


def _segments(states: np.ndarray, code: int) -> List[Tuple[int, int]]:
    """Contiguous [start, end) runs where ``states == code``."""
    mask = states == code
    if not mask.any():
        return []
    padded = np.concatenate(([False], mask, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    ends = np.flatnonzero(diff == -1)
    return list(zip(starts.tolist(), ends.tolist()))


def _top_splits(splits, coverage: float = 0.995):
    """Trim a category split to the head covering ``coverage`` of volume."""
    if not splits:
        return splits
    ordered = sorted(splits, key=lambda s: s[1] + s[2], reverse=True)
    total = sum(s[1] + s[2] for s in ordered)
    if total <= 0:
        return []
    kept, acc = [], 0.0
    for item in ordered:
        kept.append(item)
        acc += item[1] + item[2]
        if acc >= coverage * total:
            break
    return kept
