"""Per-device campaign simulation (single-device kernel wrapper).

One :class:`DeviceSimulator` walks a single participant through a whole
campaign by handing the device to the columnar batch kernel
(:func:`repro.simulation.kernel.simulate_devices`) and replaying the
kernel's per-day cap decisions into a local :class:`SoftCapTracker`. The
scalar per-day loop that used to live here completed its one-release
deprecation window and was removed along with ``collect()``; campaigns
simulate whole shards through the kernel directly, and this wrapper
remains for single-device call sites (tests, examples, notebooks).

This module still owns the calibrated RSSI models (``_HOME_RSSI_MODEL``
et al.) that the kernel imports — they are measurement-environment
facts, not kernel internals.

Everything the agent can observe is appended to a
:class:`~repro.traces.dataset.DatasetBuilder` in column chunks.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.demand import DemandModel
from repro.apps.updates import UpdateModel
from repro.mobility.model import MobilityModel
from repro.net.accesspoint import APType
from repro.net.cellular import CellularNetwork
from repro.network_env.deployment import Deployment
from repro.population.profiles import UserProfile
from repro.radio.pathloss import PathLossModel, RssiModel
from repro.simulation.cap import SoftCapTracker
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.dataset import DatasetBuilder
from repro.traces.records import DeviceOS, IfaceKind

_HOME_RSSI_MODEL = RssiModel(
    tx_power_dbm=16.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=3.0
)
_OFFICE_RSSI_MODEL = RssiModel(
    tx_power_dbm=16.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=3.5
)
_PUBLIC_RSSI_MODEL = RssiModel(
    tx_power_dbm=17.0, path_loss=PathLossModel(exponent=3.0), shadowing_sigma_db=5.0
)


class DeviceSimulator:
    """Simulates one participant for a whole campaign."""

    def __init__(
        self,
        profile: UserProfile,
        axis: TimeAxis,
        deployment: Deployment,
        demand: DemandModel,
        params: SimParams,
        update_model: Optional[UpdateModel],
        rng: np.random.Generator,
    ) -> None:
        self.profile = profile
        self.axis = axis
        self.deployment = deployment
        self.demand = demand
        self.params = params
        self.update_model = update_model
        self.rng = rng
        # The constructor's draw order below is load-bearing: the kernel
        # consumes ``rng`` where construction leaves it, so two wrappers
        # built from the same generator state must agree bit for bit.
        self.mobility = MobilityModel(profile, axis, rng)
        self.cap = SoftCapTracker(params.cap_policy)
        #: Whether this device drops WiFi while the owner sleeps. Android's
        #: legacy WiFi sleep policy makes this far more common there, which
        #: is part of the §3.3.4 iOS-vs-Android connectivity gap.
        sleep_p = 0.60 if profile.os is DeviceOS.ANDROID else 0.30
        self.sleep_disconnects = rng.random() < sleep_p
        #: Battery state carried across days (percent).
        self._battery_level = float(rng.uniform(55.0, 100.0))
        #: Habitual device<->router signal at home/office (stable per user).
        self._home_rssi_base = self._draw_base_rssi(APType.HOME)
        self._office_rssi_base = self._draw_base_rssi(APType.OFFICE)
        self._tx_frac_wifi = demand.tx_fraction(profile.mix, on_wifi=True)
        self._tx_frac_cell = demand.tx_fraction(profile.mix, on_wifi=False)
        self._cell_iface = int(IfaceKind.from_technology(profile.technology))
        #: Per-slot ceiling from the radio link itself (3G bites, LTE rarely).
        network = CellularNetwork(profile.technology, profile.carrier)
        self._cell_slot_capacity = network.capacity_bytes(600.0)

    # ------------------------------------------------------------------

    def run(self, builder: DatasetBuilder) -> None:
        """Simulate every campaign day and append records to ``builder``."""
        for name, columns in self._collect_impl().items():
            getattr(builder, f"extend_{name}")(**columns)

    def _collect_impl(self) -> Dict[str, Dict[str, np.ndarray]]:
        """Run this one device through the columnar batch kernel.

        The caller-supplied ``rng`` becomes the device's kernel stream (so
        two wrappers with the same generator state agree), the explicit
        ``update_model`` is honored (``None`` disables updates), and the
        kernel's per-day cap decisions are replayed into :attr:`cap` so
        callers inspecting throttle state see what the device experienced.
        """
        # Imported here: kernel.py imports this module's RSSI tables, so a
        # module-level import would cycle.
        from repro.simulation.kernel import simulate_devices

        device_id = self.profile.user_id
        result = next(simulate_devices(
            {device_id: self.profile}, self.axis, self.deployment,
            self.demand, self.params,
            seed=0, year=0,  # unused: rng_for overrides the stream
            device_ids=[device_id],
            rng_for=lambda _device_id: self.rng,
            update_model=self.update_model,
        ))
        for rx_cell in result.day_rx_cell:
            self.cap.record_day(float(rx_cell))
        return result.tables

    # ------------------------------------------------------------------

    def _draw_base_rssi(self, ap_type: APType) -> float:
        params = self.params
        medians = {
            APType.HOME: params.home_distance_m,
            APType.OFFICE: params.office_distance_m,
            APType.PUBLIC: params.public_distance_m,
            APType.OPEN: params.public_distance_m,
            APType.MOBILE: 2.0,
        }
        distance = medians[ap_type] * float(
            np.exp(self.rng.normal(0.0, params.distance_sigma))
        )
        models = {
            APType.HOME: _HOME_RSSI_MODEL,
            APType.OFFICE: _OFFICE_RSSI_MODEL,
            APType.PUBLIC: _PUBLIC_RSSI_MODEL,
            APType.OPEN: _PUBLIC_RSSI_MODEL,
            APType.MOBILE: _HOME_RSSI_MODEL,
        }
        return models[ap_type].sample(distance, self.rng)
