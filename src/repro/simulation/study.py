"""The three-campaign longitudinal study (2013, 2014, 2015).

``default_campaign_config(year, scale)`` produces calibrated configurations
matching Table 1's panels and windows; :class:`Study` runs all three
campaigns (plus the post-campaign surveys) and is what most analyses and
benchmarks consume. ``scale`` shrinks the panel and AP universe for fast
runs while keeping per-user behaviour identical — scan rates are
automatically compensated so per-device observations stay at full-scale
magnitudes.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from datetime import date
from pathlib import Path
from typing import Dict, List, Optional, Union

import numpy as np

from repro.collection.faults import FaultPlan
from repro.engine.executor import (
    ExecutionInfo,
    Executor,
    make_executor,
    resolve_jobs,
)
from repro.engine.transport import run_token, sweep_orphans
from repro.errors import ConfigurationError
from repro.network_env.deployment import DeploymentConfig
from repro.obs.recorder import get_recorder
from repro.obs.span import get_tracer
from repro.network_env.home_wifi import HomeWifiConfig
from repro.network_env.public_wifi import PublicWifiConfig
from repro.population.recruitment import RecruitmentConfig
from repro.population.survey import SurveyResponse, run_survey
from repro.engine.resilience import ResilienceConfig, ResilienceReport
from repro.simulation.campaign import (
    CampaignConfig,
    CampaignResult,
    execute_plans,
    merge_campaign,
    plan_campaign,
)
from repro.simulation.kernel import DEFAULT_KERNEL, KERNEL_NAMES
from repro.simulation.params import default_params
from repro.traces.store import CampaignStore

YEARS = (2013, 2014, 2015)

#: Table 1: campaign windows and panel sizes.
_PANEL = {
    2013: {"start": date(2013, 3, 7), "n_days": 16, "android": 948, "ios": 807,
           "lte": 0.30},
    2014: {"start": date(2014, 2, 28), "n_days": 23, "android": 887, "ios": 789,
           "lte": 0.70},
    2015: {"start": date(2015, 2, 25), "n_days": 29, "android": 835, "ios": 781,
           "lte": 0.80},
}

#: Users with an inferred home AP: 66% / 73% / 79% (§3.4.1).
_HOME_AP_SHARE = {2013: 0.72, 2014: 0.77, 2015: 0.82}

#: Deployed public universe per year (associated subset matches Table 4).
_PUBLIC_UNIVERSE = {2013: 9000, 2014: 15000, 2015: 19000}

#: 5 GHz fractions by year (Figure 14 targets).
_PUBLIC_5GHZ = {2013: 0.22, 2014: 0.40, 2015: 0.55}
_HOME_5GHZ = {2013: 0.08, 2014: 0.12, 2015: 0.17}
_OFFICE_5GHZ = {2013: 0.08, 2014: 0.12, 2015: 0.16}

#: Home routers still on the default channel 1 (Figure 16).
_HOME_DEFAULT_CH = {2013: 0.38, 2014: 0.25, 2015: 0.15}

#: Public-WiFi enrollment (SIM auth rollout, §4.2).
_PUBLIC_ENROLLED = {2013: 0.38, 2014: 0.50, 2015: 0.60}

#: Unconstrained daily demand medians (MB); calibrated to Table 3.
_APPETITE_MB = {2013: 31.0, 2014: 40.0, 2015: 42.0}


def default_campaign_config(
    year: int,
    scale: float = 1.0,
    seed: int = 7,
    faults: Optional[FaultPlan] = None,
    kernel: str = DEFAULT_KERNEL,
) -> CampaignConfig:
    """Calibrated campaign configuration for ``year`` at panel ``scale``."""
    if year not in _PANEL:
        raise ConfigurationError(f"unknown campaign year {year}")
    if not 0.0 < scale <= 1.0:
        raise ConfigurationError(f"scale must be in (0, 1]: {scale}")
    panel = _PANEL[year]
    recruitment = RecruitmentConfig(
        year=year,
        n_android=max(2, round(panel["android"] * scale)),
        n_ios=max(2, round(panel["ios"] * scale)),
        lte_share=panel["lte"],
        home_ap_share=_HOME_AP_SHARE[year],
        public_enrolled_share=_PUBLIC_ENROLLED[year],
    )
    deployment = DeploymentConfig(
        year=year,
        home=HomeWifiConfig(
            year=year,
            fraction_5ghz=_HOME_5GHZ[year],
            default_channel_share=_HOME_DEFAULT_CH[year],
        ),
        public=PublicWifiConfig(
            year=year,
            n_aps=max(50, round(_PUBLIC_UNIVERSE[year] * scale)),
            fraction_5ghz=_PUBLIC_5GHZ[year],
        ),
        office_fraction_5ghz=_OFFICE_5GHZ[year],
        open_ap_count=max(20, round(400 * scale)),
    )
    params = default_params(year)
    # Smaller deployed universes need proportionally larger scan scaling so
    # per-device scan counts stay at full-scale magnitudes.
    params = dataclasses.replace(params, scan_scale=params.scan_scale / scale)
    return CampaignConfig(
        year=year,
        start=panel["start"],
        n_days=panel["n_days"],
        recruitment=recruitment,
        deployment=deployment,
        params=params,
        appetite_median_mb=_APPETITE_MB[year],
        seed=seed + year,
        faults=faults,
        kernel=kernel,
    )


@dataclass
class StudyConfig:
    """Configuration of the full longitudinal study."""

    scale: float = 0.25
    seed: int = 7
    years: tuple = YEARS
    #: Fault plan applied to every campaign's collection pipeline
    #: (None = lossless zero-fault plan).
    faults: Optional[FaultPlan] = None
    #: Simulation kernel for every campaign (only ``batch`` remains).
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if not 0.0 < self.scale <= 1.0:
            raise ConfigurationError(f"scale must be in (0, 1]: {self.scale}")
        unknown = [y for y in self.years if y not in YEARS]
        if unknown:
            raise ConfigurationError(f"unknown study years: {unknown}")
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of "
                f"{KERNEL_NAMES}"
            )


@dataclass
class Study:
    """Runs and holds the three campaigns plus the surveys."""

    config: StudyConfig = field(default_factory=StudyConfig)
    campaigns: Dict[int, CampaignResult] = field(default_factory=dict)
    surveys: Dict[int, List[SurveyResponse]] = field(default_factory=dict)
    #: How the most recent :meth:`run` executed (None before running).
    execution: Optional[ExecutionInfo] = None
    #: Retry/checkpoint accounting for the most recent :meth:`run` (None
    #: when no resilience was configured and nothing went wrong).
    resilience: Optional[ResilienceReport] = None

    def run(
        self,
        n_jobs: Optional[int] = None,
        executor: Optional[Executor] = None,
        resilience: Optional[ResilienceConfig] = None,
        store_dir: Optional[Union[str, Path]] = None,
        store_format: str = "npy",
    ) -> "Study":
        """Simulate every configured campaign year.

        All years' shard work units fan out across one shared executor
        (``n_jobs=None`` consults ``$REPRO_JOBS``, defaulting to serial;
        ``<= 0`` means one worker per CPU), so a process pool is paid for
        once and stays saturated across year boundaries. Results are merged
        per year in canonical shard order — worker count never changes
        results. A caller-supplied ``executor`` is reused and not closed.

        ``resilience`` turns on checkpoint/resume, bounded retries,
        partial results, and chaos injection (see
        :class:`~repro.engine.resilience.ResilienceConfig`); the retry
        policy and partial flag are threaded into executors built here.

        ``store_dir`` makes the run out-of-core: each year's shards spill
        to partitions under ``store_dir/campaign<year>/`` as they are
        accepted, the merge streams them into finalized column files, and
        every result dataset reads its store memory-mapped — the parent
        process never holds a whole campaign's rows. Bit-identical to the
        in-memory path at any ``n_jobs``.
        """
        tracer = get_tracer()
        with tracer.span("study.run", scale=self.config.scale,
                         seed=self.config.seed,
                         years=list(self.config.years)):
            n_jobs = resolve_jobs(n_jobs)
            plans = [
                plan_campaign(
                    default_campaign_config(
                        year, scale=self.config.scale, seed=self.config.seed,
                        faults=self.config.faults, kernel=self.config.kernel,
                    ),
                    n_jobs,
                )
                for year in self.config.years
            ]
            stores = None
            if store_dir is not None:
                stores = [
                    CampaignStore(
                        Path(store_dir) / f"campaign{plan.config.year}",
                        plan.config.year, plan.config.axis,
                        format=store_format,
                    )
                    for plan in plans
                ]
            n_units = sum(len(plan.work) for plan in plans)
            own_executor = executor is None
            if executor is None:
                executor = make_executor(
                    n_jobs,
                    policy=resilience.policy if resilience else None,
                    allow_partial=resilience.partial if resilience else False,
                )
            fallbacks_before = executor.fallbacks
            steals_before = getattr(executor, "steals", 0)
            checkpointed = resilience is not None and \
                resilience.store is not None
            merged = False
            try:
                try:
                    with tracer.span("execute_shards",
                                     executor=executor.name,
                                     n_jobs=executor.n_jobs):
                        outputs, report = execute_plans(
                            plans, executor, resilience=resilience,
                            stores=stores,
                        )
                        tracer.count("shard_fallbacks",
                                     executor.fallbacks - fallbacks_before)
                finally:
                    if own_executor:
                        executor.close()
                    # Post-drain janitor: anything still named under this
                    # run's token was never accepted (chaos kill, timed-out
                    # straggler) and must not outlive the run.
                    sweep_orphans(run_token())
                self.resilience = report
                allow_partial = resilience.partial if resilience else False
                for yi, (year, plan, plan_outputs) in enumerate(zip(
                    self.config.years, plans, outputs
                )):
                    result = merge_campaign(
                        plan,
                        plan_outputs,
                        execution=ExecutionInfo(
                            executor=executor.name,
                            n_jobs=executor.n_jobs,
                            n_shards=plan.shard_plan.n_shards,
                            transport_bytes=sum(
                                out.transport_bytes for out in plan_outputs
                                if out is not None
                            ),
                        ),
                        allow_partial=allow_partial,
                        store=stores[yi] if stores is not None else None,
                        keep_partitions=checkpointed,
                    )
                    self.campaigns[year] = result
                    with tracer.span("survey", year=year), \
                            get_recorder().phase("survey", year=year):
                        survey_rng = np.random.default_rng(
                            (self.config.seed, year, 99)
                        )
                        self.surveys[year] = run_survey(
                            result.profiles, year, survey_rng
                        )
                merged = True
            finally:
                # Partition janitor (disk twin of the shared-memory
                # sweep): a run that died before every year finalized
                # leaves spill partitions behind; reclaim them unless
                # checkpoints reference them for resume.
                if stores is not None and not merged and not checkpointed:
                    for st in stores:
                        st.sweep_partitions()
            self.execution = ExecutionInfo(
                executor=executor.name,
                n_jobs=executor.n_jobs,
                n_shards=n_units,
                steals=getattr(executor, "steals", 0) - steals_before,
                transport_bytes=sum(
                    out.transport_bytes
                    for plan_outputs in outputs
                    for out in plan_outputs if out is not None
                ),
            )
        return self

    def dataset(self, year: int):
        """The built dataset for ``year`` (must have been run)."""
        try:
            return self.campaigns[year].dataset
        except KeyError:
            raise ConfigurationError(
                f"campaign {year} has not been run; call Study.run() first"
            ) from None

    @property
    def years(self) -> tuple:
        return tuple(sorted(self.campaigns))


def run_study(
    scale: float = 0.25,
    seed: int = 7,
    years: Optional[tuple] = None,
    faults: Optional[FaultPlan] = None,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
    resilience: Optional[ResilienceConfig] = None,
    kernel: str = DEFAULT_KERNEL,
    store_dir: Optional[Union[str, Path]] = None,
    store_format: str = "npy",
) -> Study:
    """Convenience: run the full study at ``scale`` and return it."""
    config = StudyConfig(
        scale=scale, seed=seed, years=years or YEARS, faults=faults,
        kernel=kernel,
    )
    return Study(config).run(
        n_jobs=n_jobs, executor=executor, resilience=resilience,
        store_dir=store_dir, store_format=store_format,
    )
