"""Columnar batch simulation kernel.

This is the simulation hot path: one :func:`simulate_devices` call walks a
whole shard of devices through the campaign as device×slot numpy arrays —
mobility states, interface policy, AP association (home/office attach,
venue and commute segments, pocket routers), cap-aware traffic draws, the
battery walk, OS-update events, Android scans/sightings and daily per-app
records — emitting each device's records as ready-to-ingest column tables
instead of per-record appends. (It began life as the vectorized
replacement for a per-day scalar loop in
:mod:`repro.simulation.device`; that legacy loop completed its
one-release deprecation window and is gone.)

RNG stream layout
-----------------
Each device owns exactly one stream,
``default_rng((seed, year, device_id, _KERNEL_STREAM))``, keyed only by
campaign identity and the device id — never by shard index or position —
so batch draws are deterministic and shard-layout-independent: any
partition of the panel produces bit-identical per-device output. The
stream key is disjoint from the per-wrapper streams
(``(seed, year, device_id)``) and the collection-fault streams
(``(..., plan_seed, 104729)``), so stream families never alias.

Within a device the draw order is fixed (and documented here, because the
jobs=1 == jobs=k guarantee rests on it):

1. traits: sleep-disconnect gate, initial battery level, home and office
   base RSSI (two draws each);
2. schedule habits (``ScheduleGenerator.__post_init__``), then one
   ``generator.day`` call per campaign day;
3. activity gamma noise, one campaign-length draw;
4. daily anchor points (commuters only: per-day uniform + venue gate);
5. rest-day gates, one campaign-length draw;
6. associations: home attach delays, home obs noise, office obs noise,
   venue segments in day order, commute segments in day order, pocket
   router gates then per-day RSSI draws;
7. traffic: day factors, background, tx noise (WiFi then cellular), sync
   gates + bursts, binge gates + bursts;
8. iOS update rolls in day order (hazard gate, then start-slot pick);
9. Android scans (poisson 2.4/5 GHz, then strong binomials), sightings
   (one poisson over hourly scan slots, per-slot AP picks, then RSSI),
   and app-split gamma noise, one ``(n_groups, 26)`` draw.

``tests/test_kernel_equivalence.py`` pins the determinism and
shard-layout independence of these streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.demand import DemandModel, _RX_TX
from repro.apps.updates import UpdateModel
from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.geo.coords import Coordinate, cell_index
from repro.mobility.model import _HOURLY_ACTIVITY, _STATE_ACTIVITY, _jitter
from repro.mobility.schedule import LocationState, ScheduleGenerator
from repro.net.accesspoint import APType
from repro.net.cellular import CellularNetwork
from repro.network_env.deployment import Deployment
from repro.network_env.public_wifi import PROVIDER_ESSIDS
from repro.population.profiles import UserProfile, WifiPolicy
from repro.simulation.cap import SoftCapTracker, throttled_slot_limits
from repro.simulation.device import (
    _HOME_RSSI_MODEL,
    _OFFICE_RSSI_MODEL,
    _PUBLIC_RSSI_MODEL,
)
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.records import DeviceOS, IfaceKind, WifiStateCode

__all__ = ["DeviceResult", "simulate_devices", "device_stream",
           "KERNEL_NAMES", "DEFAULT_KERNEL", "_KERNEL_STREAM"]

#: Stream-key suffix separating kernel draws from every other stream family.
_KERNEL_STREAM = 7919

#: Sentinel: ``simulate_devices`` builds its own update model from params.
_BUILD_UPDATE_MODEL = object()

#: The valid ``kernel`` configuration values. ``legacy`` was removed
#: after its deprecation release; the CLI maps it to a hard error with a
#: migration message.
KERNEL_NAMES = ("batch",)
DEFAULT_KERNEL = "batch"

_ESSID_CARRIER: Dict[str, Optional[str]] = {
    essid: carrier for essid, _, carrier in PROVIDER_ESSIDS
}

_HOURS = np.arange(SAMPLES_PER_DAY) // SAMPLES_PER_HOUR
_STATE_CODES = tuple(int(s) for s in LocationState)
_N_STATES = len(_STATE_CODES)

_HOME = int(LocationState.HOME)
_WORK = int(LocationState.WORK)
_COMMUTE = int(LocationState.COMMUTE)
_VENUE = int(LocationState.PUBLIC_VENUE)
_OUT = int(LocationState.OUT)

#: Activity multiplier per state code, as a lookup table.
_STATE_MULT = np.array([_STATE_ACTIVITY[code] for code in _STATE_CODES])

_RSSI_MODELS = {
    APType.HOME: _HOME_RSSI_MODEL,
    APType.OFFICE: _OFFICE_RSSI_MODEL,
    APType.PUBLIC: _PUBLIC_RSSI_MODEL,
    APType.OPEN: _PUBLIC_RSSI_MODEL,
    APType.MOBILE: _HOME_RSSI_MODEL,
}


def device_stream(seed: int, year: int, device_id: int) -> np.random.Generator:
    """The batch kernel's per-device RNG stream (shard-layout independent)."""
    return np.random.default_rng((seed, year, device_id, _KERNEL_STREAM))


@dataclass
class DeviceResult:
    """One device's simulated campaign, as columnar record tables.

    ``tables`` maps table name to named column arrays — the keyword
    arguments of the matching ``DatasetBuilder.extend_*`` method, i.e. the
    exact shape ``DeviceSimulator.collect()`` returns. ``day_rx_cell`` is
    the post-cap daily cellular download (the values fed to
    ``SoftCapTracker.record_day``), kept so per-device wrappers can replay
    cap state.
    """

    device_id: int
    tables: Dict[str, Dict[str, np.ndarray]]
    day_rx_cell: np.ndarray


class _CampaignGrid:
    """Campaign-shaped constants shared by every device (no RNG)."""

    def __init__(self, axis: TimeAxis, params: SimParams) -> None:
        self.axis = axis
        self.n_days = axis.n_days
        self.n_slots = axis.n_slots
        n_days, n_slots = self.n_days, self.n_slots
        self.day_index = np.repeat(np.arange(n_days), SAMPLES_PER_DAY)
        self.weekday = (np.arange(n_days) + axis.start.weekday()) % 7
        self.weekend = self.weekday >= 5

        hours = _HOURS
        # Diurnal activity base, weekend-adjusted, for every campaign slot.
        base = _HOURLY_ACTIVITY[hours].copy()
        weekend_base = base.copy()
        weekend_base[6 * SAMPLES_PER_HOUR:9 * SAMPLES_PER_HOUR] *= 0.55
        weekend_base[9 * SAMPLES_PER_HOUR:18 * SAMPLES_PER_HOUR] *= 1.1
        self.activity_base = np.where(
            np.repeat(self.weekend, SAMPLES_PER_DAY),
            np.tile(weekend_base, n_days), np.tile(base, n_days),
        )

        self.evening = np.tile((hours >= 19) | (hours <= 1), n_days)
        self.asleep = np.tile((hours >= 2) & (hours < 6), n_days)
        #: Charging-window / force-plug hour flags (one day, slot-of-day).
        self.charge_window_hours = (hours >= 21) | (hours < 7)
        self.plug_hours = (hours >= 22) | (hours < 7)
        self.battery_report = np.arange(0, n_slots, 3)
        self.day_bounds = [
            (d * SAMPLES_PER_DAY, (d + 1) * SAMPLES_PER_DAY)
            for d in range(n_days)
        ]


class _VenueApIndex:
    """Memoized usable-venue-AP lists, shared by all devices of a shard.

    Usability depends only on (cell, carrier, public-vs-open), never on the
    device, so the filter from ``DeviceSimulator._pick_venue_ap`` is paid
    once per distinct key instead of once per pick.
    """

    def __init__(self, deployment: Deployment) -> None:
        self.deployment = deployment
        self._usable: Dict[tuple, list] = {}
        self._candidates: Dict[tuple, Optional[np.ndarray]] = {}

    def candidate_array(self, cell: tuple) -> Optional[np.ndarray]:
        """All venue APs in a cell as an id array (None when empty)."""
        arr = self._candidates.get(cell, False)
        if arr is False:
            raw = self.deployment.venue_aps_by_cell.get(cell)
            arr = np.asarray(raw, dtype=np.int64) if raw else None
            self._candidates[cell] = arr
        return arr

    def usable(self, cell: tuple, carrier: str, public: bool) -> list:
        key = (cell, carrier if public else None, public)
        cached = self._usable.get(key)
        if cached is not None:
            return cached
        deployment = self.deployment
        usable: list = []
        for ap_id in deployment.venue_aps_by_cell.get(cell, ()):
            ap = deployment.ap(ap_id)
            if public:
                if ap.ap_type is not APType.PUBLIC:
                    continue
                restriction = _ESSID_CARRIER.get(ap.essid)
                if restriction is not None and restriction != carrier:
                    continue
            elif ap.ap_type is not APType.OPEN:
                continue
            usable.append(ap_id)
        self._usable[key] = usable
        return usable


def _draw_base_rssi(ap_type: APType, params: SimParams,
                    rng: np.random.Generator) -> float:
    """Habitual device<->AP RSSI: same model and draw order as legacy."""
    if ap_type is APType.MOBILE:
        median = 2.0
    elif ap_type is APType.HOME:
        median = params.home_distance_m
    elif ap_type is APType.OFFICE:
        median = params.office_distance_m
    else:
        median = params.public_distance_m
    distance = median * float(np.exp(rng.normal(0.0, params.distance_sigma)))
    return _RSSI_MODELS[ap_type].sample(distance, rng)


def _day_segments(mask: np.ndarray, grid: _CampaignGrid) -> List[Tuple[int, int]]:
    """[start, end) runs of ``mask`` that never cross a day boundary.

    Returned in slot order (equivalently: day order, then segment order
    within the day), matching the legacy per-day ``_segments`` sweep.
    """
    if not mask.any():
        return []
    prev = np.empty_like(mask)
    prev[0] = False
    prev[1:] = mask[:-1]
    prev[::SAMPLES_PER_DAY] = False  # day boundaries break runs
    nxt = np.empty_like(mask)
    nxt[-1] = False
    nxt[:-1] = mask[1:]
    nxt[SAMPLES_PER_DAY - 1::SAMPLES_PER_DAY] = False
    starts = np.flatnonzero(mask & ~prev)
    ends = np.flatnonzero(mask & ~nxt) + 1
    return list(zip(starts.tolist(), ends.tolist()))


# ----------------------------------------------------------------------
# Per-device pass
# ----------------------------------------------------------------------

class _DevicePass:
    """Everything about one device except the (block-level) battery walk."""

    __slots__ = (
        "profile", "tables", "day_rx_cell",
        "drain", "at_home", "battery0",
    )

    def __init__(self, profile, tables, day_rx_cell, drain, at_home, battery0):
        self.profile = profile
        self.tables = tables
        self.day_rx_cell = day_rx_cell
        self.drain = drain
        self.at_home = at_home
        self.battery0 = battery0


def _simulate_device(
    profile: UserProfile,
    grid: _CampaignGrid,
    deployment: Deployment,
    demand: DemandModel,
    params: SimParams,
    update_model: Optional[UpdateModel],
    venue_index: _VenueApIndex,
    rng: np.random.Generator,
) -> _DevicePass:
    n_days, n_slots = grid.n_days, grid.n_slots
    android = profile.os is DeviceOS.ANDROID

    # -- 1. traits ------------------------------------------------------
    sleep_p = 0.60 if android else 0.30
    sleep_disconnects = bool(rng.random() < sleep_p)
    battery0 = float(rng.uniform(55.0, 100.0))
    home_rssi_base = _draw_base_rssi(APType.HOME, params, rng)
    office_rssi_base = _draw_base_rssi(APType.OFFICE, params, rng)
    tx_frac_wifi = demand.tx_fraction(profile.mix, on_wifi=True)
    tx_frac_cell = demand.tx_fraction(profile.mix, on_wifi=False)
    cell_iface = int(IfaceKind.from_technology(profile.technology))
    cell_capacity = CellularNetwork(
        profile.technology, profile.carrier
    ).capacity_bytes(600.0)

    # -- 2. schedule ----------------------------------------------------
    generator = ScheduleGenerator(
        occupation=profile.occupation, rng=rng,
        is_commuter=profile.is_commuter,
    )
    states = np.empty(n_slots, dtype=np.int64)
    for day, (lo, hi) in enumerate(grid.day_bounds):
        states[lo:hi] = generator.day(int(grid.weekday[day]), rng)

    # -- 3. activity ----------------------------------------------------
    noise = rng.gamma(3.0, 1.0 / 3.0, size=n_slots)
    activity = grid.activity_base * _STATE_MULT[states] * noise

    # -- 4. anchors -----------------------------------------------------
    home = profile.home
    office = profile.office
    if office is not None:
        fracs = rng.uniform(0.3, 0.9, n_days)
        near_office = rng.random(n_days) < 0.7
        venue_far = _jitter(home, 3.0)
        venue_near = _jitter(office, 1.0)
        venue_points = [venue_near if near else venue_far
                        for near in near_office]
        commute_points = [
            Coordinate(home.lat + (office.lat - home.lat) * f,
                       home.lon + (office.lon - home.lon) * f)
            for f in fracs.tolist()
        ]
    else:
        venue_points = [_jitter(home, 4.0)] * n_days
        commute_points = [_jitter(home, 3.0)] * n_days

    # Cell per (day, state): HOME/WORK/OUT anchors are campaign-constant.
    work_loc = office if office is not None else home
    out_loc = _jitter(home, 2.0)
    home_cell = cell_index(home)
    work_cell = cell_index(work_loc)
    out_cell = cell_index(out_loc)
    cell_col = np.empty((n_days, _N_STATES), dtype=np.int64)
    cell_row = np.empty((n_days, _N_STATES), dtype=np.int64)
    cell_col[:, _HOME], cell_row[:, _HOME] = home_cell
    cell_col[:, _WORK], cell_row[:, _WORK] = work_cell
    cell_col[:, _OUT], cell_row[:, _OUT] = out_cell
    venue_cells = [cell_index(p) for p in venue_points]
    commute_cells = [cell_index(p) for p in commute_points]
    cell_col[:, _VENUE] = [c[0] for c in venue_cells]
    cell_row[:, _VENUE] = [c[1] for c in venue_cells]
    cell_col[:, _COMMUTE] = [c[0] for c in commute_cells]
    cell_row[:, _COMMUTE] = [c[1] for c in commute_cells]

    # -- 5. interface policy --------------------------------------------
    rest_factor = 1.15 if android else 0.55
    rest_day = rng.random(n_days) < params.rest_day_p * rest_factor
    policy = profile.wifi_policy
    if policy is WifiPolicy.ALWAYS_OFF:
        wifi_on = np.zeros(n_slots, dtype=bool)
    elif policy is WifiPolicy.NO_CONFIG:
        wifi_on = np.ones(n_slots, dtype=bool)
    else:
        if policy is WifiPolicy.ALWAYS_ON:
            wifi_on = np.ones(n_slots, dtype=bool)
        else:  # DAYTIME_OFF
            wifi_on = np.zeros(n_slots, dtype=bool)
            if profile.has_home_ap:
                wifi_on |= states == _HOME
            if profile.office_has_ap:
                wifi_on |= states == _WORK
        wifi_on &= ~np.repeat(rest_day, SAMPLES_PER_DAY)

    # -- 6. associations ------------------------------------------------
    assoc = np.full(n_slots, -1, dtype=np.int64)
    rssi = np.zeros(n_slots, dtype=np.float64)
    if policy not in (WifiPolicy.ALWAYS_OFF, WifiPolicy.NO_CONFIG):
        _associate(
            profile, grid, deployment, params, venue_index,
            states, wifi_on, assoc, rssi,
            home_rssi_base, office_rssi_base,
            venue_points, commute_points, rng,
        )
    if sleep_disconnects:
        # The interface drops overnight but the last observed RSSI is not
        # cleared (legacy quirk, kept: Android rows retain stale RSSI).
        assoc = np.where(grid.asleep, -1, assoc)
    on_wifi = assoc >= 0

    # -- 7. traffic -----------------------------------------------------
    day_factor = np.exp(rng.normal(0.0, params.day_sigma, n_days))
    day_totals = activity.reshape(n_days, SAMPLES_PER_DAY).sum(axis=1)
    scale = np.where(day_totals > 0,
                     profile.appetite_bytes * day_factor
                     / np.where(day_totals > 0, day_totals, 1.0), 0.0)
    base = activity * np.repeat(scale, SAMPLES_PER_DAY)
    background = rng.exponential(params.background_bytes, n_slots)
    demand_slots = base + background

    rx_wifi = np.where(on_wifi, demand_slots * params.wifi_uplift, 0.0)
    rx_cell = np.where(on_wifi, 0.0, demand_slots)
    leak = profile.home_cell_leak
    rx_cell = rx_cell + rx_wifi * leak
    rx_wifi = rx_wifi * (1.0 - leak)
    if profile.cellular_data_off:
        rx_cell = rx_cell * params.data_off_cell_factor

    tx_wifi = rx_wifi * tx_frac_wifi * np.exp(rng.normal(0.0, 0.3, n_slots))
    tx_cell = rx_cell * tx_frac_cell * np.exp(rng.normal(0.0, 0.3, n_slots))

    wifi_evening = on_wifi & grid.evening
    sync_slots = wifi_evening & (rng.random(n_slots) < params.sync_burst_p)
    n_sync = int(sync_slots.sum())
    if n_sync:
        burst = params.sync_burst_mb * 1e6 * rng.lognormal(0.0, 0.8, n_sync)
        tx_wifi[sync_slots] += burst * 0.85
        rx_wifi[sync_slots] += burst * 0.15
    p_binge = min(0.25, params.binge_burst_p * profile.binge_propensity)
    binge_rate = np.where(grid.evening, p_binge, p_binge * 0.4)
    binge_slots = on_wifi & (rng.random(n_slots) < binge_rate)
    n_binge = int(binge_slots.sum())
    if n_binge:
        burst = params.binge_mb * 1e6 * rng.lognormal(0.0, 1.2, n_binge)
        rx_wifi[binge_slots] += burst * 0.92
        tx_wifi[binge_slots] += burst * 0.08

    # -- soft cap (sequential by day, exact tracker semantics) ----------
    cap = SoftCapTracker(params.cap_policy)
    throttled_limits = np.minimum(
        throttled_slot_limits(params.cap_policy), cell_capacity
    )
    day_rx_cell = np.empty(n_days)
    response = params.cap_demand_response
    for day, (lo, hi) in enumerate(grid.day_bounds):
        day_rx = rx_cell[lo:hi]
        if cap.throttled_today():
            day_rx *= response
            tx_cell[lo:hi] *= response
            np.minimum(day_rx, throttled_limits, out=day_rx)
        else:
            np.minimum(day_rx, cell_capacity, out=day_rx)
        total = float(day_rx.sum())
        cap.record_day(total)
        day_rx_cell[day] = total

    # -- 8. iOS update --------------------------------------------------
    tables: Dict[str, Dict[str, np.ndarray]] = {}
    if update_model is not None and profile.os is DeviceOS.IOS:
        _roll_update(profile, grid, update_model, on_wifi, rx_wifi,
                     tables, rng)

    # -- emissions ------------------------------------------------------
    user_id = profile.user_id
    _emit_traffic(user_id, cell_iface, rx_wifi, tx_wifi, rx_cell, tx_cell,
                  tables)
    _emit_wifi(user_id, android, wifi_on, assoc, rssi, tables)

    day_of = grid.day_index
    geo_col = cell_col[day_of, states]
    geo_row = cell_row[day_of, states]
    tables["geo"] = dict(
        device=np.full(n_slots, user_id), t=np.arange(n_slots),
        col=geo_col, row=geo_row,
    )

    if android:
        density24, density5 = _scan_densities(
            profile, grid, deployment, params, states, cell_col, cell_row
        )
        _emit_scans(user_id, grid, params, venue_index, states, wifi_on,
                    cell_col, cell_row, density24, density5, tables, rng)
        _emit_apps(profile, grid, demand, params, states, assoc,
                   cell_col, cell_row, rx_wifi, tx_wifi, rx_cell, tx_cell,
                   tables, rng)

    # -- battery inputs (walked at block level; consumes no RNG) --------
    means = activity.reshape(n_days, SAMPLES_PER_DAY).mean(axis=1)
    norm = activity / np.repeat(means + 1e-9, SAMPLES_PER_DAY)
    drain = 0.05 + 0.28 * norm
    drain += np.where(wifi_on, np.where(on_wifi, 0.03, 0.05), 0.0)
    at_home = states == _HOME

    return _DevicePass(profile, tables, day_rx_cell, drain, at_home, battery0)


def _associate(
    profile, grid, deployment, params, venue_index,
    states, wifi_on, assoc, rssi,
    home_rssi_base, office_rssi_base,
    venue_points, commute_points, rng,
) -> None:
    """Fill ``assoc``/``rssi`` in place (home, office, venue, commute,
    pocket router — same precedence as the legacy path)."""
    n_slots = grid.n_slots
    sigma = params.rssi_obs_sigma

    at_home = (states == _HOME) & wifi_on
    if profile.home_ap_id >= 0 and at_home.any():
        attached = at_home.copy()
        run_starts = [s for s, _ in _day_segments(at_home, grid)]
        eligible = [s for s in run_starts if s % SAMPLES_PER_DAY != 0]
        if eligible:
            delays = rng.exponential(
                params.home_attach_delay_h * SAMPLES_PER_HOUR, len(eligible)
            )
            for start, delay in zip(eligible, delays.tolist()):
                delay = int(delay)
                if delay > 0:
                    day_end = (start // SAMPLES_PER_DAY + 1) * SAMPLES_PER_DAY
                    attached[start:min(start + delay, day_end)] = False
        n_att = int(attached.sum())
        if n_att:
            assoc[attached] = profile.home_ap_id
            rssi[attached] = home_rssi_base + rng.normal(0.0, sigma, n_att)

    at_work = (states == _WORK) & wifi_on
    if profile.office_ap_id >= 0 and at_work.any():
        assoc[at_work] = profile.office_ap_id
        rssi[at_work] = office_rssi_base + rng.normal(
            0.0, sigma, int(at_work.sum())
        )

    carrier = profile.carrier.name
    always_on = profile.wifi_policy is WifiPolicy.ALWAYS_ON

    for start, end in _day_segments(states == _VENUE, grid):
        if not wifi_on[start:end].any():
            continue
        day = start // SAMPLES_PER_DAY
        ap_id = None
        if profile.public_enrolled:
            n24, n5 = deployment.public_density(venue_points[day])
            density = (n24 + n5) * params.scan_scale
            p = params.venue_assoc_p * (1.0 - np.exp(-density / 40.0))
            if rng.random() < p:
                ap_id = _pick_venue_ap(
                    venue_index, venue_points[day], carrier, True, rng
                )
        if ap_id is None and always_on:
            if rng.random() < params.open_assoc_p:
                familiar = deployment.familiar_open_aps.get(profile.user_id)
                if familiar:
                    ap_id = int(rng.choice(familiar))
                else:
                    ap_id = _pick_venue_ap(
                        venue_index, venue_points[day], carrier, False, rng
                    )
        if ap_id is None:
            continue
        length = max(1, min(end - start, 1 + int(rng.geometric(0.35))))
        offset = start if end - start <= length else int(
            rng.integers(start, end - length + 1)
        )
        base = _draw_base_rssi(deployment.ap(ap_id).ap_type, params, rng)
        assoc[offset:offset + length] = ap_id
        rssi[offset:offset + length] = base + rng.normal(0.0, sigma, length)

    if profile.public_enrolled:
        p = params.commute_assoc_p * profile.commute_public_exposure
        for start, end in _day_segments(states == _COMMUTE, grid):
            if not wifi_on[start:end].any() or rng.random() >= p * (end - start):
                continue
            day = start // SAMPLES_PER_DAY
            ap_id = _pick_venue_ap(
                venue_index, commute_points[day], carrier, True, rng
            )
            if ap_id is None:
                continue
            length = min(end - start, 1 + int(rng.random() < 0.35))
            base = _draw_base_rssi(APType.PUBLIC, params, rng)
            assoc[start:start + length] = ap_id
            rssi[start:start + length] = base + rng.normal(0.0, sigma, length)

    if profile.mobile_ap_id >= 0:
        away = (states != _HOME) & wifi_on & (assoc < 0)
        away_days = away.reshape(grid.n_days, SAMPLES_PER_DAY)
        gates = rng.random(grid.n_days)
        for day in np.flatnonzero(away_days.any(axis=1)):
            if gates[day] >= 0.75:
                continue
            base = _draw_base_rssi(APType.MOBILE, params, rng)
            lo, hi = grid.day_bounds[day]
            mask = away[lo:hi]
            idx = lo + np.flatnonzero(mask)
            assoc[idx] = profile.mobile_ap_id
            rssi[idx] = base + rng.normal(0.0, sigma, len(idx))


def _pick_venue_ap(venue_index, coord, carrier, public, rng) -> Optional[int]:
    usable = venue_index.usable(cell_index(coord), carrier, public)
    if not usable:
        return None
    return int(usable[int(rng.integers(0, len(usable)))])


def _roll_update(profile, grid, update_model, on_wifi, rx_wifi, tables, rng):
    """Per-day iOS update rolls; mutates ``rx_wifi`` and fills updates."""
    on_by_day = on_wifi.reshape(grid.n_days, SAMPLES_PER_DAY)
    wifi_slots_per_day = on_by_day.sum(axis=1)
    policy = update_model.policy
    for day in range(grid.n_days):
        wifi_hours = float(wifi_slots_per_day[day]) / SAMPLES_PER_HOUR
        took = update_model.maybe_update(
            profile.user_id, day, bool(grid.weekend[day]), wifi_hours, rng
        )
        if not took:
            continue
        day_on = on_by_day[day]
        slots = np.flatnonzero(day_on)
        evening = slots[(_HOURS[slots] >= 18) | (_HOURS[slots] <= 1)]
        pool = evening if len(evening) >= 3 else slots
        start = int(pool[int(rng.integers(0, max(1, len(pool) - 2)))])
        spread = [s for s in range(start, min(start + 3, SAMPLES_PER_DAY))
                  if day_on[s]]
        if not spread:
            spread = [start]
        lo = grid.day_bounds[day][0]
        for s in spread:
            rx_wifi[lo + s] += policy.size_bytes / len(spread)
        tables["updates"] = dict(
            device=np.full(1, profile.user_id),
            t=np.array([lo + spread[0]], dtype=np.int64),
            bytes=np.array([policy.size_bytes]),
        )
        break  # one update per campaign; later rolls would all be no-ops


def _emit_traffic(user_id, cell_iface, rx_wifi, tx_wifi, rx_cell, tx_cell,
                  tables) -> None:
    wifi_slots = np.flatnonzero((rx_wifi + tx_wifi) >= 100.0)
    cell_slots = np.flatnonzero((rx_cell + tx_cell) >= 100.0)
    n = len(wifi_slots) + len(cell_slots)
    if not n:
        return
    # WiFi rows before cellular rows: equal-t rows keep the legacy order
    # after the builder's stable (device, t) sort.
    tables["traffic"] = dict(
        device=np.full(n, user_id),
        t=np.concatenate([wifi_slots, cell_slots]),
        iface=np.concatenate([
            np.full(len(wifi_slots), int(IfaceKind.WIFI)),
            np.full(len(cell_slots), cell_iface),
        ]),
        rx=np.concatenate([rx_wifi[wifi_slots], rx_cell[cell_slots]]),
        tx=np.concatenate([tx_wifi[wifi_slots], tx_cell[cell_slots]]),
    )


def _emit_wifi(user_id, android, wifi_on, assoc, rssi, tables) -> None:
    associated = assoc >= 0
    if not android:
        slots = np.flatnonzero(associated)
        if not len(slots):
            return
        tables["wifi"] = dict(
            device=np.full(len(slots), user_id), t=slots,
            state=np.full(len(slots), int(WifiStateCode.ASSOCIATED)),
            ap_id=assoc[slots], rssi=rssi[slots],
        )
        return
    n_slots = len(assoc)
    state = np.where(
        associated, int(WifiStateCode.ASSOCIATED),
        np.where(wifi_on, int(WifiStateCode.AVAILABLE),
                 int(WifiStateCode.OFF)),
    )
    tables["wifi"] = dict(
        device=np.full(n_slots, user_id), t=np.arange(n_slots),
        state=state, ap_id=assoc, rssi=rssi,
    )


def _scan_densities(profile, grid, deployment, params, states,
                    cell_col, cell_row):
    """Audible public-AP densities per slot, from the day's cells."""
    frac = np.array([
        params.audible_frac_home, params.audible_frac_commute,
        params.audible_frac_work, params.audible_frac_venue,
        params.audible_frac_commute,
    ])
    counts = deployment.public_counts_by_cell
    d24 = np.empty((grid.n_days, _N_STATES))
    d5 = np.empty((grid.n_days, _N_STATES))
    for day in range(grid.n_days):
        for code in _STATE_CODES:
            n24, n5 = counts.get(
                (int(cell_col[day, code]), int(cell_row[day, code])), (0, 0)
            )
            d24[day, code] = n24 * params.scan_scale * frac[code]
            d5[day, code] = n5 * params.scan_scale * frac[code]
    day_of = grid.day_index
    return d24[day_of, states], d5[day_of, states]


def _emit_scans(user_id, grid, params, venue_index, states, wifi_on,
                cell_col, cell_row, density24, density5, tables, rng) -> None:
    on_slots = np.flatnonzero(wifi_on)
    if not len(on_slots):
        return
    n24_all = rng.poisson(density24[on_slots])
    n5_all = rng.poisson(density5[on_slots])
    n24_strong = rng.binomial(n24_all, params.scan_strong_p)
    n5_strong = rng.binomial(n5_all, params.scan_strong_p)
    tables["scans"] = dict(
        device=np.full(len(on_slots), user_id), t=on_slots,
        n24_all=n24_all, n24_strong=n24_strong,
        n5_all=n5_all, n5_strong=n5_strong,
    )

    # Hourly detailed sightings: one poisson across every scan slot, then
    # per-slot without-replacement AP picks and a vectorized RSSI draw.
    hourly = on_slots[
        (on_slots % SAMPLES_PER_DAY) % params.sighting_period_slots == 0
    ]
    if not len(hourly):
        return
    lam = np.minimum(density24[hourly] + density5[hourly], 30.0)
    n_raw = rng.poisson(lam)
    alive = n_raw > 0
    if not alive.any():
        return
    slots = hourly[alive]
    wanted = n_raw[alive]
    pair = grid.day_index[slots] * _N_STATES + states[slots]
    # Group sighting slots by (day, state): one candidate set per group,
    # one random matrix whose row-wise argsort yields an independent
    # uniform permutation per slot (no per-slot python).
    order = np.argsort(pair, kind="stable")
    slots, wanted, pair = slots[order], wanted[order], pair[order]
    uniq, starts = np.unique(pair, return_index=True)
    bounds = np.append(starts, len(pair))
    t_chunks: List[np.ndarray] = []
    ap_chunks: List[np.ndarray] = []
    for g, key in enumerate(uniq.tolist()):
        day, code = divmod(key, _N_STATES)
        cand = venue_index.candidate_array(
            (int(cell_col[day, code]), int(cell_row[day, code]))
        )
        if cand is None:
            continue
        lo, hi = bounds[g], bounds[g + 1]
        m = len(cand)
        ks = np.minimum(wanted[lo:hi], min(m, 15))
        perms = np.argsort(rng.random((hi - lo, m)), axis=1)
        keep = np.arange(m) < ks[:, None]
        ap_chunks.append(cand[perms[keep]])
        t_chunks.append(np.repeat(slots[lo:hi], ks))
    if not t_chunks:
        return
    sight_ap = np.concatenate(ap_chunks)
    sight_t = np.concatenate(t_chunks)
    n_rows = len(sight_ap)
    distances = params.public_distance_m * np.exp(
        rng.normal(0.0, params.distance_sigma, n_rows)
    )
    sight_rssi = _PUBLIC_RSSI_MODEL.sample_many(distances, rng)
    tables["sightings"] = dict(
        device=np.full(n_rows, user_id),
        t=sight_t,
        ap_id=sight_ap,
        rssi=sight_rssi,
    )


def _emit_apps(profile, grid, demand, params, states, assoc,
               cell_col, cell_row, rx_wifi, tx_wifi, rx_cell, tx_cell,
               tables, rng) -> None:
    """Daily per-category app records, vectorized across every group.

    A *group* is (day, cell) for cellular volume or (day, ap) for WiFi
    volume — the same partition the legacy path builds per day. All
    groups' category splits share one ``(n_groups, 26)`` gamma draw and
    one vectorized head-trim.
    """
    n_days = grid.n_days
    day_of = grid.day_index

    # Per-(day, state) cellular sums.
    key = day_of * _N_STATES + states
    minlength = n_days * _N_STATES
    rx_by = np.bincount(key, weights=rx_cell, minlength=minlength) \
        .reshape(n_days, _N_STATES)
    tx_by = np.bincount(key, weights=tx_cell, minlength=minlength) \
        .reshape(n_days, _N_STATES)
    present = np.bincount(key, minlength=minlength).reshape(n_days, _N_STATES)

    # Per-(day, ap) WiFi sums, with the first slot each pair appears in.
    assoc_mask = assoc >= 0
    ap_rows_by_day: Dict[int, list] = {}
    if assoc_mask.any():
        idx = np.flatnonzero(assoc_mask)
        pair = day_of[idx].astype(np.int64) * (assoc.max() + 1) + assoc[idx]
        uniq, first, inverse = np.unique(
            pair, return_index=True, return_inverse=True
        )
        rxw = np.bincount(inverse, weights=rx_wifi[idx])
        txw = np.bincount(inverse, weights=tx_wifi[idx])
        first_slot = idx[first]
        for g in range(len(uniq)):
            slot = int(first_slot[g])
            day = int(day_of[slot])
            ap_rows_by_day.setdefault(day, []).append(
                (int(assoc[slot]), float(rxw[g]), float(txw[g]),
                 int(states[slot]))
            )

    # Assemble groups in day order: cellular cell-groups first (state-code
    # sweep, volumes below 1 byte dropped per state), then WiFi ap-groups
    # in ascending ap id — the legacy per-day emission order.
    groups = []  # (day, cellular, ap_id, cell, rx_sum, tx_sum)
    for day in range(n_days):
        cell_groups: Dict[tuple, list] = {}
        for code in _STATE_CODES:
            if not present[day, code]:
                continue
            rx_sum = float(rx_by[day, code])
            tx_sum = float(tx_by[day, code])
            if rx_sum + tx_sum < 1.0:
                continue
            cell = (int(cell_col[day, code]), int(cell_row[day, code]))
            acc = cell_groups.setdefault(cell, [0.0, 0.0])
            acc[0] += rx_sum
            acc[1] += tx_sum
        for cell, (rx_sum, tx_sum) in cell_groups.items():
            groups.append((day, True, -1, cell, rx_sum, tx_sum))
        for ap_id, rx_sum, tx_sum, code in ap_rows_by_day.get(day, ()):
            if rx_sum + tx_sum < 1.0:
                continue
            cell = (int(cell_col[day, code]), int(cell_row[day, code]))
            groups.append((day, False, ap_id, cell, rx_sum, tx_sum))
    if not groups:
        return

    n_groups = len(groups)
    n_cats = len(_RX_TX)
    shares_cell = profile.mix.context_shares(False)
    shares_wifi = profile.mix.context_shares(True)
    cellular = np.array([g[1] for g in groups])
    shares = np.where(cellular[:, None], shares_cell, shares_wifi)
    rx_sums = np.array([g[4] for g in groups])
    tx_sums = np.array([g[5] for g in groups])

    noisy = shares * rng.gamma(2.0, 0.5, size=(n_groups, n_cats))
    totals = noisy.sum(axis=1)
    degenerate = totals <= 0
    if degenerate.any():
        noisy[degenerate] = shares[degenerate]
        totals = noisy.sum(axis=1)
    rx_shares = noisy / totals[:, None]
    tx_weights = rx_shares / _RX_TX
    tx_totals = tx_weights.sum(axis=1)
    safe = np.where(tx_totals > 0, tx_totals, 1.0)
    tx_shares = np.where((tx_totals > 0)[:, None],
                         tx_weights / safe[:, None], rx_shares)
    cat_rx = rx_sums[:, None] * rx_shares
    cat_tx = tx_sums[:, None] * tx_shares

    # Head-trim to 99.5% of each group's volume (legacy _top_splits), then
    # drop sub-byte rows.
    mass = cat_rx + cat_tx
    order = np.argsort(-mass, axis=1, kind="stable")
    sorted_mass = np.take_along_axis(mass, order, axis=1)
    csum = np.cumsum(sorted_mass, axis=1)
    total_mass = mass.sum(axis=1)
    before = csum - sorted_mass
    keep = (before < 0.995 * total_mass[:, None]) \
        & (total_mass[:, None] > 0) & (sorted_mass >= 1.0)
    counts = keep.sum(axis=1)
    if not counts.any():
        return

    cat_codes = np.broadcast_to(np.arange(n_cats), (n_groups, n_cats))
    sorted_codes = np.take_along_axis(cat_codes, order, axis=1)
    sorted_rx = np.take_along_axis(cat_rx, order, axis=1)
    sorted_tx = np.take_along_axis(cat_tx, order, axis=1)

    days = np.array([g[0] for g in groups])
    aps = np.array([g[2] for g in groups])
    cols = np.array([g[3][0] for g in groups])
    rows = np.array([g[3][1] for g in groups])
    tables["apps"] = dict(
        device=np.full(int(counts.sum()), profile.user_id),
        day=np.repeat(days, counts),
        category=sorted_codes[keep],
        cellular=np.repeat(cellular.astype(np.int64), counts),
        ap_id=np.repeat(aps, counts),
        col=np.repeat(cols, counts),
        row=np.repeat(rows, counts),
        rx=sorted_rx[keep],
        tx=sorted_tx[keep],
    )


# ----------------------------------------------------------------------
# Block-level battery walk
# ----------------------------------------------------------------------

def _walk_battery(passes: Sequence[_DevicePass], grid: _CampaignGrid) -> None:
    """Run the sequential charge/drain recurrence for a block of devices.

    The per-slot update is the exact legacy rule, but applied to the whole
    block at once: the 4000+-iteration python loop is paid once per block
    instead of once per device. The walk consumes no RNG (neither does the
    legacy one), so it can run after every other draw.
    """
    n_dev = len(passes)
    n_slots = grid.n_slots
    drain = np.stack([p.drain for p in passes], axis=1)       # (S, B)
    at_home = np.stack([p.at_home for p in passes], axis=1)   # (S, B)
    level = np.array([p.battery0 for p in passes])
    plugged = np.zeros(n_dev, dtype=bool)
    report = grid.battery_report
    levels = np.empty((len(report), n_dev))
    charging = np.empty((len(report), n_dev), dtype=np.int8)
    cw_hours = grid.charge_window_hours
    plug_hours = grid.plug_hours
    for i in range(n_slots):
        hour_slot = i % SAMPLES_PER_DAY
        if hour_slot == 0:
            plugged[:] = False  # legacy walk starts each day unplugged
        home_now = at_home[i]
        if cw_hours[hour_slot]:
            plugged |= home_now & ((level < 40.0) | plug_hours[hour_slot])
        plugged &= (level < 100.0) & home_now
        level = np.where(
            plugged,
            np.minimum(100.0, level + 1.6),
            np.maximum(0.0, level - drain[i]),
        )
        if i % 3 == 0:
            r = i // 3
            levels[r] = level
            charging[r] = plugged
    t = report
    for d, dev in enumerate(passes):
        dev.tables["battery"] = dict(
            device=np.full(len(t), dev.profile.user_id), t=t.copy(),
            level=levels[:, d], charging=charging[:, d],
        )


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def simulate_devices(
    profiles: Sequence[UserProfile],
    axis: TimeAxis,
    deployment: Deployment,
    demand: DemandModel,
    params: SimParams,
    *,
    seed: int,
    year: int,
    device_ids: Optional[Sequence[int]] = None,
    rng_for: Optional[Callable[[int], np.random.Generator]] = None,
    update_model: object = _BUILD_UPDATE_MODEL,
    block_size: int = 256,
) -> Iterator[DeviceResult]:
    """Simulate ``device_ids`` (default: every profile) through the batch
    kernel, yielding one :class:`DeviceResult` per device in input order.

    ``rng_for`` overrides the per-device stream constructor (the
    ``DeviceSimulator`` compatibility wrapper routes its caller-supplied
    stream identity through it); by default every device uses
    :func:`device_stream`, which is shard-layout independent.
    ``update_model`` overrides the OS-update model — pass ``None`` to
    disable updates entirely (the ``DeviceSimulator`` contract for an
    explicit ``update_model=None``); by default one fresh model is built
    from ``params.update_policy``.
    """
    grid = _CampaignGrid(axis, params)
    venue_index = _VenueApIndex(deployment)
    if update_model is _BUILD_UPDATE_MODEL:
        update_model = (UpdateModel(params.update_policy)
                        if params.update_policy is not None else None)
    if device_ids is None:
        device_ids = range(len(profiles))
    if rng_for is None:
        rng_for = lambda device_id: device_stream(seed, year, device_id)

    ids = list(device_ids)
    for lo in range(0, len(ids), max(1, block_size)):
        block = ids[lo:lo + max(1, block_size)]
        passes = [
            _simulate_device(
                profiles[device_id], grid, deployment, demand, params,
                update_model, venue_index, rng_for(device_id),
            )
            for device_id in block
        ]
        _walk_battery(passes, grid)
        for device_pass in passes:
            yield DeviceResult(
                device_id=device_pass.profile.user_id,
                tables=device_pass.tables,
                day_rx_cell=device_pass.day_rx_cell,
            )
