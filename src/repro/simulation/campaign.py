"""Run one measurement campaign end to end.

``run_campaign`` assembles the year's world (panel, deployment), simulates
every device, and freezes the result into a
:class:`~repro.traces.dataset.CampaignDataset` whose AP directory contains
exactly the APs that were actually observed (associated or sighted) — the
dataset never reveals the full deployed universe, just like the real
measurement.

By default every device's records flow through the full collection
substrate (agent → uploader → transport → server) under a
:class:`~repro.collection.faults.FaultPlan` — zero-fault unless configured
otherwise, in which case the resulting dataset is identical to the direct
builder path (``direct_build=True``). A nonzero plan loses data exactly the
way real campaigns do, and the resulting
:class:`~repro.collection.faults.CollectionReport` rides along on the
:class:`CampaignResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Optional, Set

import numpy as np

from repro.apps.demand import DemandModel
from repro.apps.updates import UpdateModel
from repro.collection.faults import CollectionReport, FaultPlan
from repro.collection.pipeline import CollectionPump
from repro.collection.server import CollectionServer
from repro.errors import ConfigurationError
from repro.net.accesspoint import AccessPoint
from repro.network_env.deployment import Deployment, DeploymentConfig, build_deployment
from repro.population.profiles import UserProfile
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.simulation.device import DeviceSimulator
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, DatasetBuilder, GroundTruth
from repro.traces.records import ApDirectoryEntry, DeviceInfo


@dataclass
class CampaignConfig:
    """Everything needed to simulate one campaign."""

    year: int
    start: date
    n_days: int
    recruitment: RecruitmentConfig
    deployment: DeploymentConfig
    params: SimParams
    appetite_median_mb: float
    appetite_sigma: float = 0.85
    seed: int = 0
    #: Fault plan for the collection pipeline; None means the lossless
    #: zero-fault plan (the pipeline still runs end to end).
    faults: Optional[FaultPlan] = None
    #: Bypass the collection pipeline and write simulator output straight
    #: into the builder (legacy fast path; used to verify equivalence).
    direct_build: bool = False

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ConfigurationError("n_days must be positive")
        if self.recruitment.year != self.year or self.deployment.year != self.year:
            raise ConfigurationError("year mismatch between configs")
        if self.direct_build and self.faults is not None and not self.faults.is_zero:
            raise ConfigurationError(
                "direct_build bypasses the collection pipeline; a nonzero "
                "FaultPlan would be silently ignored"
            )

    @property
    def fault_plan(self) -> FaultPlan:
        return self.faults if self.faults is not None else FaultPlan.zero()

    @property
    def axis(self) -> TimeAxis:
        return TimeAxis(self.start, self.n_days)


@dataclass
class CampaignResult:
    """A finished campaign: dataset plus simulator-side context."""

    config: CampaignConfig
    dataset: CampaignDataset
    profiles: List[UserProfile]
    deployment: Deployment
    #: Collection accounting (None when the pipeline was bypassed).
    collection: Optional[CollectionReport] = None


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Simulate one campaign and return its dataset and context."""
    root_rng = np.random.default_rng(config.seed)
    demand = DemandModel(
        year_index=config.params.year_index,
        appetite_median_mb=config.appetite_median_mb,
        appetite_sigma=config.appetite_sigma,
        wifi_uplift=config.params.wifi_uplift,
    )
    profiles = recruit(config.recruitment, demand, root_rng)
    deployment = build_deployment(profiles, config.deployment, root_rng)

    axis = config.axis
    infos = [
        DeviceInfo(
            device_id=profile.user_id,
            os=profile.os,
            carrier=profile.carrier.name,
            technology=profile.technology,
            recruited=profile.recruited,
            occupation=profile.occupation.value,
        )
        for profile in profiles
    ]

    report: Optional[CollectionReport] = None
    pump: Optional[CollectionPump] = None
    server: Optional[CollectionServer] = None
    if config.direct_build:
        builder = DatasetBuilder(config.year, axis)
        for info in infos:
            builder.add_device(info)
    else:
        server = CollectionServer(config.year, axis)
        for info in infos:
            server.register_device(info)
        pump = CollectionPump(
            server,
            config.fault_plan,
            n_slots=axis.n_slots,
            seed=config.seed,
            year=config.year,
        )
        builder = server.builder

    update_model: Optional[UpdateModel] = None
    if config.params.update_policy is not None:
        update_model = UpdateModel(config.params.update_policy)

    for info, profile in zip(infos, profiles):
        user_rng = np.random.default_rng((config.seed, config.year, profile.user_id))
        simulator = DeviceSimulator(
            profile=profile,
            axis=axis,
            deployment=deployment,
            demand=demand,
            params=config.params,
            update_model=update_model,
            rng=user_rng,
        )
        if pump is None:
            simulator.run(builder)
        else:
            pump.transmit(info, simulator.collect())

    if pump is not None:
        server.flush_buffers()
        report = pump.report()

    _register_observed_aps(builder, deployment)
    builder.ground_truth = _ground_truth(profiles, deployment)
    dataset = builder.build()
    return CampaignResult(
        config=config, dataset=dataset, profiles=profiles,
        deployment=deployment, collection=report,
    )


def _register_observed_aps(builder: DatasetBuilder, deployment: Deployment) -> None:
    """Put only APs the panel actually observed into the directory."""
    observed: Set[int] = set()
    for chunk in builder._chunks["wifi"]:
        ap_ids = chunk["ap_id"]
        observed.update(int(a) for a in np.unique(ap_ids) if a >= 0)
    for chunk in builder._chunks["sightings"]:
        observed.update(int(a) for a in np.unique(chunk["ap_id"]))
    for chunk in builder._chunks["apps"]:
        ap_ids = chunk["ap_id"]
        observed.update(int(a) for a in np.unique(ap_ids) if a >= 0)
    for ap_id in sorted(observed):
        ap: AccessPoint = deployment.ap(ap_id)
        builder.add_ap(
            ApDirectoryEntry(
                ap_id=ap.ap_id,
                bssid=ap.bssid,
                essid=ap.essid,
                band=ap.band,
                channel=ap.channel,
            )
        )


def _ground_truth(profiles: List[UserProfile], deployment: Deployment) -> GroundTruth:
    truth = GroundTruth()
    truth.ap_types = {ap_id: ap.ap_type for ap_id, ap in deployment.aps.items()}
    for profile in profiles:
        if profile.home_ap_id >= 0:
            truth.home_ap_of_user[profile.user_id] = profile.home_ap_id
        if profile.office_ap_id >= 0:
            truth.office_ap_of_user[profile.user_id] = profile.office_ap_id
        truth.wifi_policy_of_user[profile.user_id] = profile.wifi_policy.value
    return truth
