"""Run one measurement campaign end to end.

``run_campaign`` assembles the year's world (panel, deployment), simulates
every device, and freezes the result into a
:class:`~repro.traces.dataset.CampaignDataset` whose AP directory contains
exactly the APs that were actually observed (associated or sighted) — the
dataset never reveals the full deployed universe, just like the real
measurement.

By default every device's records flow through the full collection
substrate (agent → uploader → transport → server) under a
:class:`~repro.collection.faults.FaultPlan` — zero-fault unless configured
otherwise, in which case the resulting dataset is identical to the direct
builder path (``direct_build=True``). A nonzero plan loses data exactly the
way real campaigns do, and the resulting
:class:`~repro.collection.faults.CollectionReport` rides along on the
:class:`CampaignResult`.

Execution is sharded through :mod:`repro.engine`: ``plan_campaign`` splits
the panel into deterministic work units, an executor (serial or a process
pool, see ``n_jobs``) runs :func:`simulate_shard` over them, and
``merge_campaign`` reassembles the shard outputs in canonical order. Every
device keeps its own ``(seed, year, user_id)`` RNG stream, so ``n_jobs=1``
and ``n_jobs=k`` are bit-for-bit identical.
"""

from __future__ import annotations

import os
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from datetime import date
from typing import List, Optional, Sequence

import numpy as np

from repro.apps.demand import DemandModel
from repro.collection.faults import CollectionReport, FaultPlan
from repro.collection.pipeline import CollectionPump
from repro.collection.server import CollectionServer
from repro.engine.chaos import ChaosInjector, ChaosMonkey
from repro.engine.executor import (
    ExecutionInfo,
    Executor,
    make_executor,
    resolve_jobs,
)
from repro.engine.merge import (
    ShardOutput,
    merge_chunks,
    merge_reports,
    missing_shards,
    ordered_outputs,
)
from repro.engine.planner import ShardPlan, plan_units
from repro.engine.resilience import (
    ExecutionLosses,
    ResilienceConfig,
    ResilienceReport,
    config_key,
)
from repro.engine.transport import ShardPayload, run_token, sweep_orphans
from repro.errors import ConfigurationError, EngineError
from repro.net.accesspoint import AccessPoint
from repro.obs.recorder import get_recorder
from repro.obs.span import Tracer, get_tracer, use_tracer
from repro.network_env.deployment import Deployment, DeploymentConfig, build_deployment
from repro.population.profiles import UserProfile
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.simulation.kernel import DEFAULT_KERNEL, KERNEL_NAMES, simulate_devices
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, DatasetBuilder, GroundTruth
from repro.traces.records import ApDirectoryEntry, DeviceInfo
from repro.traces.store import CampaignStore


@dataclass
class CampaignConfig:
    """Everything needed to simulate one campaign."""

    year: int
    start: date
    n_days: int
    recruitment: RecruitmentConfig
    deployment: DeploymentConfig
    params: SimParams
    appetite_median_mb: float
    appetite_sigma: float = 0.85
    seed: int = 0
    #: Fault plan for the collection pipeline; None means the lossless
    #: zero-fault plan (the pipeline still runs end to end).
    faults: Optional[FaultPlan] = None
    #: Bypass the collection pipeline and write simulator output straight
    #: into the builder (legacy fast path; used to verify equivalence).
    direct_build: bool = False
    #: Which simulation kernel runs the devices. Only the columnar
    #: ``batch`` kernel remains (the scalar ``legacy`` loop completed its
    #: one-release deprecation window and was removed); the field stays so
    #: config reprs — and with them checkpoint/world-cache keys — are
    #: stable.
    kernel: str = DEFAULT_KERNEL

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ConfigurationError("n_days must be positive")
        if self.recruitment.year != self.year or self.deployment.year != self.year:
            raise ConfigurationError("year mismatch between configs")
        if self.direct_build and self.faults is not None and not self.faults.is_zero:
            raise ConfigurationError(
                "direct_build bypasses the collection pipeline; a nonzero "
                "FaultPlan would be silently ignored"
            )
        if self.kernel not in KERNEL_NAMES:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}; expected one of {KERNEL_NAMES}"
            )

    @property
    def fault_plan(self) -> FaultPlan:
        return self.faults if self.faults is not None else FaultPlan.zero()

    @property
    def axis(self) -> TimeAxis:
        return TimeAxis(self.start, self.n_days)


@dataclass
class CampaignResult:
    """A finished campaign: dataset plus simulator-side context."""

    config: CampaignConfig
    dataset: CampaignDataset
    profiles: List[UserProfile]
    deployment: Deployment
    #: Collection accounting (None when the pipeline was bypassed).
    collection: Optional[CollectionReport] = None
    #: How the campaign was executed (None for reloaded datasets).
    execution: Optional[ExecutionInfo] = None
    #: Shards dropped under ``--partial-results`` (None = complete run).
    losses: Optional[ExecutionLosses] = None
    #: Retry/checkpoint accounting (None when no resilience was configured
    #: and every shard succeeded first try).
    resilience: Optional[ResilienceReport] = None


@dataclass
class _World:
    """The deterministic campaign prelude shared by every shard.

    Everything here is treated as read-only during simulation (the update
    model, which accumulates per-device decisions, is deliberately NOT part
    of the world — each shard builds its own fresh instance).
    """

    demand: DemandModel
    profiles: List[UserProfile]
    deployment: Deployment
    infos: List[DeviceInfo]


@dataclass
class ShardWork:
    """Picklable work unit: one shard of one campaign."""

    config: CampaignConfig
    shard_index: int
    device_ids: tuple
    #: When True the worker runs under a local tracer and ships its span
    #: tree back on the :class:`ShardOutput` (set at plan time from the
    #: parent's tracer; never affects simulation results).
    telemetry: bool = False
    #: Run token for shared-memory transport: when set (parallel
    #: execution), the worker packs its chunks into a
    #: :class:`~repro.engine.transport.ShardPayload` segment named under
    #: this token instead of returning them inline.
    shm_token: Optional[str] = None


@dataclass
class CampaignPlan:
    """A campaign decomposed into shard work units, ready to execute."""

    config: CampaignConfig
    world: _World = field(repr=False)
    shard_plan: ShardPlan
    work: List[ShardWork]


#: Process-local cache of built worlds, keyed by the config's canonical
#: repr. Workers forked from the parent inherit it, so shards reuse the
#: parent's world instead of rebuilding; spawn-based (or cold) workers
#: rebuild deterministically from the same seed.
_WORLD_CACHE: "OrderedDict[str, _World]" = OrderedDict()
_WORLD_CACHE_MAX = 8


def _build_world(config: CampaignConfig) -> _World:
    """Build the panel and deployment exactly as a serial run would.

    This replays the historical ``run_campaign`` prelude verbatim (same
    root-RNG draw order), so shard workers that rebuild the world get
    bit-identical profiles and deployment.
    """
    root_rng = np.random.default_rng(config.seed)
    demand = DemandModel(
        year_index=config.params.year_index,
        appetite_median_mb=config.appetite_median_mb,
        appetite_sigma=config.appetite_sigma,
        wifi_uplift=config.params.wifi_uplift,
    )
    profiles = recruit(config.recruitment, demand, root_rng)
    deployment = build_deployment(profiles, config.deployment, root_rng)
    infos = [
        DeviceInfo(
            device_id=profile.user_id,
            os=profile.os,
            carrier=profile.carrier.name,
            technology=profile.technology,
            recruited=profile.recruited,
            occupation=profile.occupation.value,
        )
        for profile in profiles
    ]
    return _World(
        demand=demand, profiles=profiles, deployment=deployment, infos=infos,
    )


def clear_world_cache() -> None:
    """Drop cached campaign worlds (benchmarks use this for fair timing)."""
    _WORLD_CACHE.clear()


def _world_for(config: CampaignConfig) -> _World:
    key = repr(config)
    world = _WORLD_CACHE.get(key)
    if world is None:
        with get_tracer().span("build_world", year=config.year):
            world = _build_world(config)
        _WORLD_CACHE[key] = world
        while len(_WORLD_CACHE) > _WORLD_CACHE_MAX:
            _WORLD_CACHE.popitem(last=False)
    else:
        _WORLD_CACHE.move_to_end(key)
    return world


def plan_campaign(config: CampaignConfig, n_jobs: int = 1) -> CampaignPlan:
    """Build the world and partition the panel into shard work units."""
    tracer = get_tracer()
    with tracer.span("plan_campaign", year=config.year), \
            get_recorder().phase("plan", year=config.year):
        world = _world_for(config)
        shard_plan = plan_units(
            [info.device_id for info in world.infos], max(1, n_jobs)
        )
        work = [
            ShardWork(
                config=config, shard_index=shard.index,
                device_ids=shard.device_ids,
                telemetry=tracer.enabled,
            )
            for shard in shard_plan.shards
        ]
        tracer.count("shards", shard_plan.n_shards)
        tracer.count("devices", shard_plan.n_devices)
    return CampaignPlan(
        config=config, world=world, shard_plan=shard_plan, work=work
    )


def simulate_shard(work: ShardWork) -> ShardOutput:
    """Simulate one shard's devices and return their records and accounting.

    Module-level so process-pool workers can import it; reuses the parent's
    cached world when forked, rebuilds it deterministically otherwise.

    When the plan carries telemetry, the shard runs under its own local
    :class:`~repro.obs.span.Tracer` — regardless of whether it executes in
    a pool worker or inline in the parent — and ships the exported span
    tree back on ``ShardOutput.spans`` for the merge layer to graft into
    the parent's trace. Telemetry never touches RNG streams, so traced and
    untraced shards are bit-identical.
    """
    if not work.telemetry:
        return _simulate_shard_impl(work)
    tracer = Tracer(
        "simulate_shard",
        {"year": work.config.year, "shard": work.shard_index,
         "pid": os.getpid()},
    )
    with use_tracer(tracer):
        output = _simulate_shard_impl(work)
    output.spans = tracer.export()
    return output


def _simulate_shard_impl(work: ShardWork) -> ShardOutput:
    config = work.config
    world = _world_for(config)
    axis = config.axis

    pump: Optional[CollectionPump] = None
    server: Optional[CollectionServer] = None
    if config.direct_build:
        builder = DatasetBuilder(config.year, axis)
        for info in world.infos:
            builder.add_device(info)
    else:
        server = CollectionServer(config.year, axis)
        for info in world.infos:
            server.register_device(info)
        pump = CollectionPump(
            server,
            config.fault_plan,
            n_slots=axis.n_slots,
            seed=config.seed,
            year=config.year,
        )
        builder = server.builder

    tracer = get_tracer()
    stats = []
    for device_id in work.device_ids:
        if world.profiles[device_id].user_id != device_id:
            raise EngineError(
                f"panel is not dense: profile "
                f"{world.profiles[device_id].user_id} at position {device_id}"
            )
    with tracer.span("simulate_devices", n_devices=len(work.device_ids),
                     kernel=config.kernel):
        # Columnar kernel: per-device streams key only on the device
        # id, so any shard layout produces bit-identical output.
        for result in simulate_devices(
            world.profiles, axis, world.deployment, world.demand,
            config.params, seed=config.seed, year=config.year,
            device_ids=work.device_ids,
        ):
            if pump is None:
                for name, columns in result.tables.items():
                    getattr(builder, f"extend_{name}")(**columns)
            else:
                stats.append(pump.transmit_bulk(
                    world.infos[result.device_id], result.tables
                ))
            tracer.count("devices")

    if server is not None:
        with tracer.span("flush_buffers"):
            server.flush_buffers()
    chunks = builder.export_chunks()
    payload: Optional[ShardPayload] = None
    if work.shm_token is not None:
        with tracer.span("pack_payload", shard=work.shard_index):
            payload = ShardPayload.pack(chunks, work.shm_token)
        chunks = None
    return ShardOutput(
        shard_index=work.shard_index,
        device_ids=tuple(work.device_ids),
        chunks=chunks,
        stats=stats,
        batches_received=server.batches_received if server else 0,
        duplicates_dropped=server.duplicates_dropped if server else 0,
        payload=payload,
    )


def identity_of(plans: Sequence[CampaignPlan]) -> dict:
    """The checkpoint-compatibility identity of a set of campaign plans.

    Everything that determines whether a spilled shard may be merged into
    this run: per-year config hashes (which fold in every simulation
    parameter including the seed), the seeds themselves (explicit, for a
    readable mismatch message), and the shard layout (resuming with a
    different ``--jobs`` would repartition the panel).
    """
    return {
        "seeds": {str(p.config.year): p.config.seed for p in plans},
        "config_keys": {str(p.config.year): config_key(p.config)
                        for p in plans},
        "n_shards": {str(p.config.year): p.shard_plan.n_shards
                     for p in plans},
    }


def execute_plans(
    plans: Sequence[CampaignPlan],
    executor: Executor,
    resilience: Optional[ResilienceConfig] = None,
    stores: Optional[Sequence[Optional[CampaignStore]]] = None,
) -> "tuple[List[List[Optional[ShardOutput]]], Optional[ResilienceReport]]":
    """Run every plan's shards through ``executor``, self-healing as asked.

    The workhorse behind :func:`run_campaign` and ``Study.run``: loads
    already-checkpointed shards when resuming, fans the remaining work
    units across the executor (chaos-wrapped when a plan is injected),
    spills each completed shard to the checkpoint store as it arrives, and
    aggregates the executor's attempt history into a
    :class:`~repro.engine.resilience.ResilienceReport`.

    ``stores`` (aligned with ``plans``) turns on out-of-core execution: a
    plan with a :class:`~repro.traces.store.CampaignStore` spills each
    accepted shard's columns into a store partition immediately, so the
    parent never accumulates more than one shard's rows in memory, and
    checkpoints for those shards reference the partition instead of
    re-pickling the rows.

    Returns one output list per plan, indexed by shard (``None`` marks a
    shard dropped in partial mode), plus the report (None when no
    resilience was configured and nothing went wrong).
    """
    res = resilience
    store = res.store if res is not None else None
    outputs: List[List[Optional[ShardOutput]]] = [
        [None] * plan.shard_plan.n_shards for plan in plans
    ]
    keys = [config_key(plan.config) for plan in plans]
    tracer = get_tracer()
    recorder = get_recorder()

    def _store_for(pi: int) -> Optional[CampaignStore]:
        return stores[pi] if stores is not None else None

    if store is not None:
        store.initialize(identity_of(plans), resume=res.resume)
        if res.resume:
            with tracer.span("load_checkpoints"):
                for pi, plan in enumerate(plans):
                    for shard in plan.shard_plan.shards:
                        loaded = store.load(
                            keys[pi], plan.config.seed, shard.index
                        )
                        if loaded is not None and loaded.partition is not None \
                                and not loaded.partition.is_valid():
                            # The checkpoint references a store partition
                            # that vanished or changed since it was saved;
                            # treat it as a miss and re-simulate.
                            tracer.count("checkpoint_stale_partitions")
                            loaded = None
                        if loaded is not None:
                            outputs[pi][shard.index] = loaded
                            recorder.emit("checkpoint_loaded",
                                          year=plan.config.year,
                                          shard=shard.index)
            tracer.count("checkpoint_hits", store.hits)
            tracer.count("checkpoint_corrupt", store.corrupt)

    # Pool workers ship their chunks through shared-memory segments named
    # under this run's token; serial (in-process) execution keeps them
    # inline — no segment, no attach, bit-identical either way.
    shm_token = run_token() if getattr(executor, "name", "") == "parallel" \
        else None
    pending: List["tuple[int, ShardWork]"] = [
        (pi, replace(work, shm_token=shm_token))
        for pi, plan in enumerate(plans)
        for work in plan.work
        if outputs[pi][work.shard_index] is None
    ]

    chaos = res.chaos if res is not None else None
    fn = simulate_shard
    monkey = None
    if chaos is not None:
        if chaos.injects_worker_faults:
            fn = ChaosInjector(simulate_shard, chaos)
        if chaos.kill_after_shards is not None:
            monkey = ChaosMonkey(chaos)

    # Live progress accounting: per-shard completion feeds a devices/s
    # rate and an ETA over the not-yet-checkpointed work. Guarded by
    # ``recorder.enabled`` so the telemetry-off path stays zero-overhead.
    devices_total = sum(len(work.device_ids) for _, work in pending)
    progress = {"done": 0, "devices_done": 0}
    t0 = time.monotonic()
    if recorder.enabled:
        for unit, (pi, work) in enumerate(pending):
            recorder.emit("shard_queued", year=work.config.year,
                          shard=work.shard_index, unit=unit,
                          devices=len(work.device_ids))

    def _accept(local_index: int, output: ShardOutput) -> None:
        pi, work = pending[local_index]
        if output.payload is not None:
            # Attach now and unlink immediately: the mapped memory lives
            # as long as the handle, so the /dev/shm entry exists only
            # for the worker→parent in-flight window and a later crash
            # cannot leak it.
            output.payload.attach()
            output.payload.unlink()
            tracer.count("transport_bytes", output.payload.n_bytes)
        plan_store = _store_for(pi)
        if plan_store is not None:
            # Out-of-core: the shard's columns land in a store partition
            # right away and the shared-memory segment is unmapped — the
            # parent keeps only the slim PartitionRef per shard.
            output = output.spill(
                plan_store, f"shard-{work.shard_index:04d}"
            )
        outputs[pi][work.shard_index] = output
        if store is not None:
            # Checkpoints must be self-contained: shared-memory views are
            # materialised and spans dropped (wall-clock telemetry from
            # THIS run must not be replayed into a resumed run's trace).
            store.save(keys[pi], plans[pi].config.seed,
                       work.shard_index, output.for_checkpoint())
            recorder.emit("checkpoint_saved", year=work.config.year,
                          shard=work.shard_index)
        if recorder.enabled:
            recorder.emit(
                "shard_completed", year=work.config.year,
                shard=work.shard_index, unit=local_index,
                devices=len(work.device_ids),
            )
            progress["done"] += 1
            progress["devices_done"] += len(work.device_ids)
            elapsed = time.monotonic() - t0
            rate = (progress["devices_done"] / elapsed
                    if elapsed > 0 else 0.0)
            remaining = devices_total - progress["devices_done"]
            recorder.emit(
                "progress", done=progress["done"], total=len(pending),
                devices_done=progress["devices_done"],
                devices_total=devices_total, rate=round(rate, 2),
                eta_s=(round(remaining / rate, 1) if rate > 0 else None),
                elapsed_s=round(elapsed, 2),
            )
        if monkey is not None:
            monkey.on_shard_complete()

    history_before = len(getattr(executor, "history", ()))
    counts_before = {
        name: getattr(executor, name, 0)
        for name in ("retries", "fallbacks", "dropped")
    }
    with recorder.phase("execute", shards=len(pending),
                        executor=getattr(executor, "name", "?")):
        executor.run(fn, [work for _, work in pending], on_result=_accept)

    report = _resilience_report(
        executor, history_before, counts_before, pending, store, res
    )
    return outputs, report


def _resilience_report(
    executor: Executor,
    history_before: int,
    counts_before: dict,
    pending: Sequence["tuple[int, ShardWork]"],
    store,
    res: Optional[ResilienceConfig],
) -> Optional[ResilienceReport]:
    history = list(getattr(executor, "history", ()))[history_before:]
    failures_by_kind: dict = {}
    shard_attempts = []
    for log in history:
        _, work = pending[log.unit_index]
        entry = log.to_dict()
        entry["year"] = work.config.year
        entry["shard"] = work.shard_index
        shard_attempts.append(entry)
        for failure in log.failures:
            failures_by_kind[failure.kind] = \
                failures_by_kind.get(failure.kind, 0) + 1
    eventful = bool(failures_by_kind) or bool(
        store and (store.hits or store.saved or store.corrupt)
    )
    if res is None and not eventful:
        return None
    return ResilienceReport(
        shard_attempts=shard_attempts,
        retries=getattr(executor, "retries", 0) - counts_before["retries"],
        fallbacks=getattr(executor, "fallbacks", 0)
        - counts_before["fallbacks"],
        dropped_shards=getattr(executor, "dropped", 0)
        - counts_before["dropped"],
        failures_by_kind=failures_by_kind,
        checkpoint_saved=store.saved if store is not None else 0,
        checkpoint_hits=store.hits if store is not None else 0,
        checkpoint_corrupt=store.corrupt if store is not None else 0,
    )


def merge_campaign(
    plan: CampaignPlan,
    outputs: Sequence[Optional[ShardOutput]],
    execution: Optional[ExecutionInfo] = None,
    allow_partial: bool = False,
    store: Optional[CampaignStore] = None,
    keep_partitions: bool = False,
) -> CampaignResult:
    """Reassemble shard outputs into a finished campaign, canonically.

    With ``allow_partial``, shards may be missing (``None`` or absent):
    the merged dataset covers only the surviving shards' records — dropped
    devices keep their roster entries with zero records, like recruited
    users whose data never arrived — and the loss is accounted explicitly
    in :attr:`CampaignResult.losses`. At least one shard must survive.

    With a ``store``, the merge is out-of-core: shard partitions are
    streaming-merged into the store's canonical column files (same stable
    sort as ``DatasetBuilder.build``, bit-identical at any ``n_jobs``) and
    the returned dataset reads them memory-mapped. Spill partitions are
    reclaimed after a successful finalize unless ``keep_partitions``
    (set when checkpoints reference them for resume).
    """
    config = plan.config
    world = plan.world
    tracer = get_tracer()
    # Graft worker span trees under the *current* span (the campaign/study
    # stage that ran the shards), not under merge_campaign — shard wall
    # time is execution time, not merge time.
    for out in outputs:
        if out is not None:
            tracer.attach(out.spans)
    dropped = missing_shards(outputs, plan.shard_plan)
    losses: Optional[ExecutionLosses] = None
    if dropped:
        if not allow_partial:
            # Fall through to the merge layer's hard validation for the
            # canonical EngineError message.
            pass
        elif len(dropped) == plan.shard_plan.n_shards:
            raise EngineError(
                f"campaign {config.year} lost every shard; nothing to merge "
                f"(partial results need at least one surviving shard)"
            )
        else:
            losses = ExecutionLosses(
                year=config.year,
                n_shards=plan.shard_plan.n_shards,
                dropped_shards=dropped,
                n_devices=plan.shard_plan.n_devices,
                dropped_devices=sum(
                    plan.shard_plan.shards[i].n_devices for i in dropped
                ),
            )
    with tracer.span("merge_campaign", year=config.year,
                     n_shards=plan.shard_plan.n_shards,
                     store=store is not None), \
            get_recorder().phase("merge", year=config.year):
        if store is None:
            builder = DatasetBuilder(config.year, config.axis)
            for info in world.infos:
                builder.add_device(info)
            merge_chunks(builder, outputs, plan.shard_plan,
                         allow_missing=allow_partial)

        report: Optional[CollectionReport] = None
        if not config.direct_build:
            report = merge_reports(outputs, plan.shard_plan,
                                   config.axis.n_slots,
                                   allow_missing=allow_partial)
            totals = report.totals()
            tracer.count("batches_delivered", totals["delivered"])
            tracer.count("batches_dropped", totals["dropped"])
            tracer.count("batches_churned", totals["churned"])
            tracer.count("duplicates_dropped", report.duplicates_dropped)
        if losses is not None:
            tracer.count("shards_dropped", len(losses.dropped_shards))
            tracer.count("devices_dropped", losses.dropped_devices)

        if store is None:
            _register_observed_aps(builder, world.deployment)
            builder.ground_truth = _ground_truth(
                world.profiles, world.deployment
            )
            dataset = builder.build()
        else:
            dataset = _merge_into_store(
                plan, outputs, store,
                allow_partial=allow_partial,
                keep_partitions=keep_partitions,
            )
    return CampaignResult(
        config=config, dataset=dataset, profiles=world.profiles,
        deployment=world.deployment, collection=report, execution=execution,
        losses=losses,
    )


def _merge_into_store(
    plan: CampaignPlan,
    outputs: Sequence[Optional[ShardOutput]],
    store: CampaignStore,
    allow_partial: bool = False,
    keep_partitions: bool = False,
) -> CampaignDataset:
    """Streaming out-of-core twin of the builder merge.

    Surviving shards' partitions (written on accept, or here for inline
    outputs such as serial runs and non-store checkpoint reloads) are
    handed to :meth:`CampaignStore.finalize` in canonical shard order —
    the exact order ``merge_chunks`` appends, followed by the same stable
    sort — so the finalized store is bit-identical to the in-memory
    dataset. The AP directory is built from the partition manifests'
    observed ids, mirroring :func:`_register_observed_aps`.
    """
    config = plan.config
    world = plan.world
    partitions = []
    for out in ordered_outputs(outputs, plan.shard_plan,
                               allow_missing=allow_partial):
        if out.partition is None:
            out = out.spill(store, f"shard-{out.shard_index:04d}")
        partitions.append(out.partition)
    observed: set = set()
    for ref in partitions:
        observed.update(ref.observed_ap_ids)
    ap_directory = {}
    for ap_id in sorted(observed):
        ap: AccessPoint = world.deployment.ap(ap_id)
        ap_directory[ap_id] = ApDirectoryEntry(
            ap_id=ap.ap_id, bssid=ap.bssid, essid=ap.essid,
            band=ap.band, channel=ap.channel,
        )
    store.finalize(
        world.infos, ap_directory,
        _ground_truth(world.profiles, world.deployment),
        partitions,
    )
    store.sweep_partitions(
        keep=[ref.name for ref in partitions] if keep_partitions else ()
    )
    return store.load_dataset()


def run_campaign(
    config: CampaignConfig,
    n_jobs: Optional[int] = None,
    executor: Optional[Executor] = None,
    resilience: Optional[ResilienceConfig] = None,
    store: Optional[CampaignStore] = None,
) -> CampaignResult:
    """Simulate one campaign and return its dataset and context.

    ``n_jobs`` selects the executor: ``None`` consults ``$REPRO_JOBS`` and
    defaults to 1 (serial); values ``<= 0`` mean one worker per CPU. A
    caller-supplied ``executor`` is reused as-is (and not closed here).
    ``resilience`` enables checkpoint/resume, retry, partial results, and
    chaos injection; when an executor is built here, the resilience
    policy/partial settings are threaded into it. A ``store`` makes the
    run out-of-core: shards spill to store partitions on accept and the
    result's dataset reads the finalized store memory-mapped.
    """
    tracer = get_tracer()
    with tracer.span("run_campaign", year=config.year):
        n_jobs = resolve_jobs(n_jobs)
        plan = plan_campaign(config, n_jobs)
        own_executor = executor is None
        if executor is None:
            executor = make_executor(
                n_jobs,
                policy=resilience.policy if resilience else None,
                allow_partial=resilience.partial if resilience else False,
            )
        fallbacks_before = executor.fallbacks
        steals_before = getattr(executor, "steals", 0)
        checkpointed = resilience is not None and resilience.store is not None
        merged = False
        try:
            try:
                with tracer.span("execute_shards", executor=executor.name,
                                 n_jobs=executor.n_jobs):
                    outputs, report = execute_plans(
                        [plan], executor, resilience=resilience,
                        stores=[store] if store is not None else None,
                    )
                    tracer.count("shard_fallbacks",
                                 executor.fallbacks - fallbacks_before)
            finally:
                if own_executor:
                    executor.close()
                # The executor has drained (close waits for healthy
                # futures), so any segment still named under this run's
                # token is an orphan — a chaos-killed loop or a timed-out
                # straggler on a discarded pool — and is reclaimed here.
                sweep_orphans(run_token())
            execution = ExecutionInfo(
                executor=executor.name,
                n_jobs=executor.n_jobs,
                n_shards=plan.shard_plan.n_shards,
                steals=getattr(executor, "steals", 0) - steals_before,
                transport_bytes=sum(
                    out.transport_bytes for out in outputs[0]
                    if out is not None
                ),
            )
            result = merge_campaign(
                plan, outputs[0], execution=execution,
                allow_partial=resilience.partial if resilience else False,
                store=store, keep_partitions=checkpointed,
            )
            merged = True
        finally:
            # Partition janitor, mirroring the shared-memory sweep: a run
            # that died before finalize leaves spill partitions behind;
            # reclaim them unless checkpoints reference them for resume.
            if store is not None and not merged and not checkpointed:
                store.sweep_partitions()
        result.resilience = report
        return result


def _register_observed_aps(builder: DatasetBuilder, deployment: Deployment) -> None:
    """Put only APs the panel actually observed into the directory."""
    for ap_id in sorted(builder.observed_ap_ids()):
        ap: AccessPoint = deployment.ap(ap_id)
        builder.add_ap(
            ApDirectoryEntry(
                ap_id=ap.ap_id,
                bssid=ap.bssid,
                essid=ap.essid,
                band=ap.band,
                channel=ap.channel,
            )
        )


def _ground_truth(profiles: List[UserProfile], deployment: Deployment) -> GroundTruth:
    truth = GroundTruth()
    truth.ap_types = {ap_id: ap.ap_type for ap_id, ap in deployment.aps.items()}
    for profile in profiles:
        if profile.home_ap_id >= 0:
            truth.home_ap_of_user[profile.user_id] = profile.home_ap_id
        if profile.office_ap_id >= 0:
            truth.office_ap_of_user[profile.user_id] = profile.office_ap_id
        truth.wifi_policy_of_user[profile.user_id] = profile.wifi_policy.value
    return truth
