"""Run one measurement campaign end to end.

``run_campaign`` assembles the year's world (panel, deployment), simulates
every device, and freezes the result into a
:class:`~repro.traces.dataset.CampaignDataset` whose AP directory contains
exactly the APs that were actually observed (associated or sighted) — the
dataset never reveals the full deployed universe, just like the real
measurement.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date
from typing import List, Optional, Set

import numpy as np

from repro.apps.demand import DemandModel
from repro.apps.updates import UpdateModel
from repro.errors import ConfigurationError
from repro.net.accesspoint import AccessPoint
from repro.network_env.deployment import Deployment, DeploymentConfig, build_deployment
from repro.population.profiles import UserProfile
from repro.population.recruitment import RecruitmentConfig, recruit
from repro.simulation.device import DeviceSimulator
from repro.simulation.params import SimParams
from repro.timeutil import TimeAxis
from repro.traces.dataset import CampaignDataset, DatasetBuilder, GroundTruth
from repro.traces.records import ApDirectoryEntry, DeviceInfo


@dataclass
class CampaignConfig:
    """Everything needed to simulate one campaign."""

    year: int
    start: date
    n_days: int
    recruitment: RecruitmentConfig
    deployment: DeploymentConfig
    params: SimParams
    appetite_median_mb: float
    appetite_sigma: float = 0.85
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ConfigurationError("n_days must be positive")
        if self.recruitment.year != self.year or self.deployment.year != self.year:
            raise ConfigurationError("year mismatch between configs")

    @property
    def axis(self) -> TimeAxis:
        return TimeAxis(self.start, self.n_days)


@dataclass
class CampaignResult:
    """A finished campaign: dataset plus simulator-side context."""

    config: CampaignConfig
    dataset: CampaignDataset
    profiles: List[UserProfile]
    deployment: Deployment


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Simulate one campaign and return its dataset and context."""
    root_rng = np.random.default_rng(config.seed)
    demand = DemandModel(
        year_index=config.params.year_index,
        appetite_median_mb=config.appetite_median_mb,
        appetite_sigma=config.appetite_sigma,
        wifi_uplift=config.params.wifi_uplift,
    )
    profiles = recruit(config.recruitment, demand, root_rng)
    deployment = build_deployment(profiles, config.deployment, root_rng)

    axis = config.axis
    builder = DatasetBuilder(config.year, axis)
    for profile in profiles:
        builder.add_device(
            DeviceInfo(
                device_id=profile.user_id,
                os=profile.os,
                carrier=profile.carrier.name,
                technology=profile.technology,
                recruited=profile.recruited,
                occupation=profile.occupation.value,
            )
        )

    update_model: Optional[UpdateModel] = None
    if config.params.update_policy is not None:
        update_model = UpdateModel(config.params.update_policy)

    for profile in profiles:
        user_rng = np.random.default_rng((config.seed, config.year, profile.user_id))
        simulator = DeviceSimulator(
            profile=profile,
            axis=axis,
            deployment=deployment,
            demand=demand,
            params=config.params,
            update_model=update_model,
            rng=user_rng,
        )
        simulator.run(builder)

    _register_observed_aps(builder, deployment)
    builder.ground_truth = _ground_truth(profiles, deployment)
    dataset = builder.build()
    return CampaignResult(
        config=config, dataset=dataset, profiles=profiles, deployment=deployment
    )


def _register_observed_aps(builder: DatasetBuilder, deployment: Deployment) -> None:
    """Put only APs the panel actually observed into the directory."""
    observed: Set[int] = set()
    for chunk in builder._chunks["wifi"]:
        ap_ids = chunk["ap_id"]
        observed.update(int(a) for a in np.unique(ap_ids) if a >= 0)
    for chunk in builder._chunks["sightings"]:
        observed.update(int(a) for a in np.unique(chunk["ap_id"]))
    for chunk in builder._chunks["apps"]:
        ap_ids = chunk["ap_id"]
        observed.update(int(a) for a in np.unique(ap_ids) if a >= 0)
    for ap_id in sorted(observed):
        ap: AccessPoint = deployment.ap(ap_id)
        builder.add_ap(
            ApDirectoryEntry(
                ap_id=ap.ap_id,
                bssid=ap.bssid,
                essid=ap.essid,
                band=ap.band,
                channel=ap.channel,
            )
        )


def _ground_truth(profiles: List[UserProfile], deployment: Deployment) -> GroundTruth:
    truth = GroundTruth()
    truth.ap_types = {ap_id: ap.ap_type for ap_id, ap in deployment.aps.items()}
    for profile in profiles:
        if profile.home_ap_id >= 0:
            truth.home_ap_of_user[profile.user_id] = profile.home_ap_id
        if profile.office_ap_id >= 0:
            truth.office_ap_of_user[profile.user_id] = profile.office_ap_id
        truth.wifi_policy_of_user[profile.user_id] = profile.wifi_policy.value
    return truth
