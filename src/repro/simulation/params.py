"""Behavioural simulation parameters with year defaults.

Everything here is a calibration knob: the paper reports the *observed*
quantities (Section 5 of DESIGN.md lists the targets) and these parameters
steer the generator so the observed shapes come out. All defaults were tuned
against the shape targets; see EXPERIMENTS.md for the resulting comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.apps.updates import UpdatePolicy
from repro.errors import ConfigurationError
from repro.simulation.cap import SoftCapPolicy


@dataclass(frozen=True)
class SimParams:
    """Year-specific behavioural constants for the device simulator."""

    year_index: int

    #: Extra demand unlocked by being on WiFi (rich/free network).
    wifi_uplift: float = 1.9

    #: Per-venue-visit probability an enrolled user associates with a
    #: provider AP (scaled by local AP density).
    venue_assoc_p: float = 0.35

    #: Per-commute-segment probability of a short station-WiFi association.
    commute_assoc_p: float = 0.10

    #: Chance per venue visit of using a familiar open (shop) network.
    open_assoc_p: float = 0.15

    #: Day-to-day volume variability (log-normal sigma of the day factor).
    day_sigma: float = 0.75

    #: Per-day probability the device's WiFi simply stays off (a "rest day":
    #: forgotten toggles, reporting gaps) for users who otherwise use WiFi.
    rest_day_p: float = 0.18

    #: At home, association starts this long (mean hours, exponential) after
    #: arriving — people do not race to the router.
    home_attach_delay_h: float = 1.5

    #: Residual traffic on cellular for users who disabled cellular data.
    data_off_cell_factor: float = 0.0002

    #: WiFi binge bursts: probability per associated evening slot of a bulk
    #: download (video binge, app downloads) and its median size.
    binge_burst_p: float = 0.04
    binge_mb: float = 30.0

    #: Background (idle) traffic bytes per slot, keeps devices visible.
    background_bytes: float = 1500.0

    #: Probability of a WiFi-only sync burst per associated evening slot and
    #: its log-mean size (productivity / online storage, §3.6).
    sync_burst_p: float = 0.02
    sync_burst_mb: float = 8.0

    #: Scan-rate scaling: multiplies cell AP counts up to the "real" universe
    #: the panel would detect (our deployed universe is smaller for memory).
    scan_scale: float = 4.0

    #: Fraction of a cell's (scaled) public APs audible from one spot.
    audible_frac_venue: float = 0.060
    audible_frac_commute: float = 0.045

    #: Work hours in (often downtown) offices expose many public networks.
    audible_frac_work: float = 0.0025
    audible_frac_home: float = 0.0015

    #: Probability a detected public AP is strong enough to use (§3.5).
    scan_strong_p: float = 0.35

    #: Detailed sightings are recorded once per this many slots (agent
    #: storage optimization; 6 = hourly).
    sighting_period_slots: int = 6

    #: Demand response while capped: users who know they are throttled cut
    #: their cellular use (§3.8); the 2015 policy relaxation weakens this.
    cap_demand_response: float = 1.0

    cap_policy: SoftCapPolicy = field(default_factory=SoftCapPolicy)

    #: iOS update event (2015 campaign only).
    update_policy: Optional[UpdatePolicy] = None

    #: Association RSSI observation noise (dB).
    rssi_obs_sigma: float = 2.5

    #: Typical device-to-AP distances (log-normal median metres) per class.
    home_distance_m: float = 18.0
    office_distance_m: float = 18.0
    public_distance_m: float = 22.0
    distance_sigma: float = 0.55

    def __post_init__(self) -> None:
        if self.year_index not in (0, 1, 2):
            raise ConfigurationError(f"year_index must be 0..2: {self.year_index}")
        for name in (
            "wifi_uplift", "venue_assoc_p", "commute_assoc_p", "open_assoc_p",
            "day_sigma", "rest_day_p", "home_attach_delay_h",
            "data_off_cell_factor", "binge_burst_p", "binge_mb",
            "cap_demand_response",
            "background_bytes", "sync_burst_p", "sync_burst_mb", "scan_scale",
            "audible_frac_venue", "audible_frac_commute", "audible_frac_home",
            "audible_frac_work",
            "scan_strong_p", "rssi_obs_sigma", "home_distance_m",
            "office_distance_m", "public_distance_m", "distance_sigma",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if not 0.0 <= self.venue_assoc_p <= 1.0:
            raise ConfigurationError("venue_assoc_p must be in [0, 1]")
        if self.sighting_period_slots < 1:
            raise ConfigurationError("sighting_period_slots must be >= 1")


#: Peak-hour tuple shared by default cap policies.
_PEAKS: Tuple[int, ...] = (8, 12, 18, 19, 20, 21, 22, 23)


def default_params(year: int) -> SimParams:
    """Calibrated :class:`SimParams` for a campaign year (2013/2014/2015)."""
    if year == 2013:
        return SimParams(
            year_index=0,
            wifi_uplift=1.25,
            venue_assoc_p=0.50,
            commute_assoc_p=0.20,
            open_assoc_p=0.20,
            rest_day_p=0.15,
            binge_burst_p=0.020,
            binge_mb=30.0,
            scan_scale=3.0,
            cap_demand_response=0.50,
            cap_policy=SoftCapPolicy(limit_bps=128_000.0, peak_hours=_PEAKS),
        )
    if year == 2014:
        return SimParams(
            year_index=1,
            wifi_uplift=1.35,
            venue_assoc_p=0.65,
            commute_assoc_p=0.30,
            open_assoc_p=0.25,
            rest_day_p=0.13,
            binge_burst_p=0.030,
            binge_mb=33.0,
            scan_scale=3.6,
            cap_demand_response=0.50,
            cap_policy=SoftCapPolicy(limit_bps=128_000.0, peak_hours=_PEAKS),
        )
    if year == 2015:
        return SimParams(
            year_index=2,
            wifi_uplift=1.45,
            venue_assoc_p=0.80,
            commute_assoc_p=0.40,
            open_assoc_p=0.30,
            rest_day_p=0.08,
            binge_burst_p=0.040,
            binge_mb=36.0,
            scan_scale=4.2,
            # Two providers relaxed the cap in Feb 2015 (§3.8): softer limit.
            cap_policy=SoftCapPolicy(limit_bps=2_000_000.0, peak_hours=_PEAKS, penalty_days=0),
            update_policy=UpdatePolicy(release_day=13),
        )
    raise ConfigurationError(f"no default params for year {year}")
