"""Year-parameterized WiFi deployment environment."""

from repro.network_env.public_wifi import (
    PROVIDER_ESSIDS,
    PublicWifiConfig,
    provider_essid_for,
)
from repro.network_env.home_wifi import HomeWifiConfig, build_home_ap
from repro.network_env.deployment import (
    DeploymentConfig,
    Deployment,
    build_deployment,
)

__all__ = [
    "PROVIDER_ESSIDS",
    "PublicWifiConfig",
    "provider_essid_for",
    "HomeWifiConfig",
    "build_home_ap",
    "DeploymentConfig",
    "Deployment",
    "build_deployment",
]
