"""Home WiFi routers (§3.4).

Home APs dominate WiFi traffic (95% of volume). Their channel behaviour
evolves across campaigns: in 2013 many home routers sit on the factory
default channel 1; by 2015 auto-selection disperses them (Figure 16). A
small share of home routers broadcast a FON community ESSID, which the
classifier must reclassify from public to home (§3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate
from repro.net.accesspoint import AccessPoint, APType
from repro.net.identifiers import random_bssid
from repro.radio.bands import Band
from repro.radio.channels import CHANNELS_5GHZ, ChannelPlanner
from repro.radio.pathloss import PathLossModel, RssiModel


@dataclass(frozen=True)
class HomeWifiConfig:
    """Year knobs for home routers."""

    year: int
    fraction_5ghz: float
    #: Probability a home router still sits on the default channel 1.
    default_channel_share: float
    fon_share: float = 0.02

    def __post_init__(self) -> None:
        for name, v in (
            ("fraction_5ghz", self.fraction_5ghz),
            ("default_channel_share", self.default_channel_share),
            ("fon_share", self.fon_share),
        ):
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1]: {v}")


#: Home association distances: devices sit near their router.
HOME_RSSI = RssiModel(
    tx_power_dbm=16.0,
    path_loss=PathLossModel(exponent=3.0),
    shadowing_sigma_db=3.0,
)


def build_home_ap(
    ap_id: int,
    owner_id: int,
    location: Coordinate,
    config: HomeWifiConfig,
    rng: np.random.Generator,
) -> AccessPoint:
    """Create one user's home router."""
    band = Band.GHZ_5 if rng.random() < config.fraction_5ghz else Band.GHZ_2_4
    if band is Band.GHZ_2_4:
        planner = ChannelPlanner(mode="auto", default_share=config.default_channel_share)
        channel = planner.assign(rng)
    else:
        channel = int(rng.choice(CHANNELS_5GHZ))
    if rng.random() < config.fon_share:
        essid = "FON_FREE_INTERNET"
    else:
        essid = f"home-{owner_id:05d}-{int(rng.integers(0, 100)):02d}"
    return AccessPoint(
        ap_id=ap_id,
        bssid=random_bssid(rng),
        essid=essid,
        band=band,
        channel=channel,
        location=location,
        ap_type=APType.HOME,
        rssi_model=HOME_RSSI,
        coverage_m=60.0,
    )
