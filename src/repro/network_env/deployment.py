"""Build the year's full WiFi deployment and its spatial index.

The deployment is the AP universe devices can encounter:

- one home router per participant household that has broadband (§3.4.1),
- office APs for the minority of workplaces allowing BYOD (§4.2),
- a public universe of provider APs clustered downtown and around city
  anchors (Figure 10's spatial structure), plus open shop/hotel networks,
- mobile (pocket) WiFi routers that travel with their owner.

A :class:`Deployment` also exposes per-5km-cell indexes used for scans.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate, cell_index
from repro.geo.places import PLACES
from repro.net.accesspoint import AccessPoint, APType
from repro.net.identifiers import random_bssid, sibling_bssid
from repro.network_env.home_wifi import HomeWifiConfig, build_home_ap
from repro.network_env.public_wifi import (
    PublicWifiConfig,
    open_venue_essid,
    provider_essid_for,
)
from repro.population.demographics import Occupation
from repro.population.profiles import UserProfile, WifiPolicy
from repro.radio.bands import Band
from repro.radio.channels import CHANNELS_5GHZ, ChannelPlanner
from repro.radio.pathloss import PathLossModel, RssiModel

CellIndex = Tuple[int, int]

#: Spatial mixture for public APs: heavy downtown clusters plus city anchors.
_PUBLIC_ANCHORS = (
    ("shinjuku", 0.22, 1.6), ("shibuya", 0.18, 1.6), ("tokyo", 0.20, 2.2),
    ("yokohama", 0.09, 2.5), ("kawasaki", 0.05, 2.0), ("chiba", 0.05, 2.5),
    ("saitama", 0.05, 2.5), ("funabashi", 0.04, 2.5), ("hachioji", 0.04, 2.5),
    ("narita", 0.02, 2.5), ("odawara", 0.02, 2.5), ("yokosuka", 0.02, 2.5),
    ("tokyo", 0.02, 12.0),  # thin wide-area scatter
)

PUBLIC_RSSI = RssiModel(
    tx_power_dbm=17.0,
    path_loss=PathLossModel(exponent=3.0),
    shadowing_sigma_db=5.0,
)

OFFICE_RSSI = RssiModel(
    tx_power_dbm=16.0,
    path_loss=PathLossModel(exponent=3.0),
    shadowing_sigma_db=3.5,
)


@dataclass(frozen=True)
class DeploymentConfig:
    """All deployment knobs for one campaign year."""

    year: int
    home: HomeWifiConfig
    public: PublicWifiConfig
    office_fraction_5ghz: float = 0.10
    open_ap_count: int = 400
    carrier_open_roaming: float = 0.35

    def __post_init__(self) -> None:
        if not 0.0 <= self.office_fraction_5ghz <= 1.0:
            raise ConfigurationError("office_fraction_5ghz must be in [0, 1]")
        if self.open_ap_count < 0:
            raise ConfigurationError("open_ap_count must be >= 0")


@dataclass
class Deployment:
    """The built AP universe and its spatial index."""

    config: DeploymentConfig
    aps: Dict[int, AccessPoint] = field(default_factory=dict)
    #: Public + open venue APs per 5 km cell (ids).
    venue_aps_by_cell: Dict[CellIndex, List[int]] = field(default_factory=dict)
    #: (n 2.4GHz, n 5GHz) public-AP counts per cell.
    public_counts_by_cell: Dict[CellIndex, Tuple[int, int]] = field(default_factory=dict)
    #: Familiar open APs per user (learned venues, e.g. a favourite cafe).
    familiar_open_aps: Dict[int, List[int]] = field(default_factory=dict)

    def ap(self, ap_id: int) -> AccessPoint:
        return self.aps[ap_id]

    def venue_aps_near(self, coord: Coordinate) -> List[int]:
        """Venue (public + open) AP ids in the 5 km cell of ``coord``."""
        return self.venue_aps_by_cell.get(cell_index(coord), [])

    def public_density(self, coord: Coordinate) -> Tuple[int, int]:
        """(2.4 GHz, 5 GHz) public AP counts in the cell of ``coord``."""
        return self.public_counts_by_cell.get(cell_index(coord), (0, 0))


def build_deployment(
    profiles: List[UserProfile],
    config: DeploymentConfig,
    rng: np.random.Generator,
) -> Deployment:
    """Create the AP universe and wire profiles to their home/office APs."""
    deployment = Deployment(config=config)
    next_id = 0

    for profile in profiles:
        if profile.has_home_ap:
            ap = build_home_ap(next_id, profile.user_id, profile.home, config.home, rng)
            deployment.aps[next_id] = ap
            profile.home_ap_id = next_id
            next_id += 1
        if profile.office_has_ap and profile.office is not None:
            ap = _build_office_ap(next_id, profile, config, rng)
            deployment.aps[next_id] = ap
            profile.office_ap_id = next_id
            next_id += 1
        if profile.has_mobile_ap:
            ap = _build_mobile_ap(next_id, profile, rng)
            deployment.aps[next_id] = ap
            profile.mobile_ap_id = next_id
            next_id += 1

    next_id = _build_public_universe(deployment, next_id, config, rng)
    next_id = _build_open_universe(deployment, next_id, config, rng)
    _assign_familiar_open_aps(deployment, profiles, rng)
    return deployment


def _build_office_ap(
    ap_id: int, profile: UserProfile, config: DeploymentConfig, rng: np.random.Generator
) -> AccessPoint:
    """An office (or campus) AP. Student campuses run eduroam (§3.4.1)."""
    if profile.occupation is Occupation.STUDENT:
        essid = "eduroam"
    else:
        essid = f"corp-{int(rng.integers(0, 100000)):05d}"
    band = Band.GHZ_5 if rng.random() < config.office_fraction_5ghz else Band.GHZ_2_4
    if band is Band.GHZ_2_4:
        channel = ChannelPlanner(mode="planned").assign(rng)
    else:
        channel = int(rng.choice(CHANNELS_5GHZ))
    assert profile.office is not None
    return AccessPoint(
        ap_id=ap_id,
        bssid=random_bssid(rng),
        essid=essid,
        band=band,
        channel=channel,
        location=profile.office,
        ap_type=APType.OFFICE,
        rssi_model=OFFICE_RSSI,
        coverage_m=80.0,
    )


def _build_mobile_ap(
    ap_id: int, profile: UserProfile, rng: np.random.Generator
) -> AccessPoint:
    return AccessPoint(
        ap_id=ap_id,
        bssid=random_bssid(rng),
        essid=f"WM-{int(rng.integers(0, 100000)):05d}",
        band=Band.GHZ_2_4,
        channel=ChannelPlanner(mode="auto").assign(rng),
        location=profile.home,
        ap_type=APType.MOBILE,
        rssi_model=HOME_LIKE_RSSI,
        coverage_m=20.0,
    )


HOME_LIKE_RSSI = RssiModel(
    tx_power_dbm=12.0,
    path_loss=PathLossModel(exponent=2.5),
    shadowing_sigma_db=2.5,
)


def _scatter_around(
    anchor: Coordinate, sigma_km: float, rng: np.random.Generator
) -> Coordinate:
    lat = min(max(anchor.lat + rng.normal(0.0, sigma_km / 111.0), -89.0), 89.0)
    lon = min(max(anchor.lon + rng.normal(0.0, sigma_km / 91.0), -179.0), 179.0)
    return Coordinate(lat, lon)


#: Normalized once: ``rng.choice`` draws identically, but the per-call
#: array build and renormalization were a measurable share of world-build
#: time at bench scales.
_ANCHOR_WEIGHTS = np.array([w for _, w, _ in _PUBLIC_ANCHORS])
_ANCHOR_P = _ANCHOR_WEIGHTS / _ANCHOR_WEIGHTS.sum()


def _pick_public_location(rng: np.random.Generator) -> Coordinate:
    idx = int(rng.choice(len(_PUBLIC_ANCHORS), p=_ANCHOR_P))
    name, _, sigma = _PUBLIC_ANCHORS[idx]
    return _scatter_around(PLACES[name], sigma, rng)


def _build_public_universe(
    deployment: Deployment, next_id: int, config: DeploymentConfig, rng: np.random.Generator
) -> int:
    planner = ChannelPlanner(mode="planned")
    built = 0
    while built < config.public.n_aps:
        location = _pick_public_location(rng)
        essid, carrier = provider_essid_for(rng)
        band = Band.GHZ_5 if rng.random() < config.public.fraction_5ghz else Band.GHZ_2_4
        channel = (
            planner.assign(rng) if band is Band.GHZ_2_4 else int(rng.choice(CHANNELS_5GHZ))
        )
        base_bssid = random_bssid(rng)
        essids = [essid]
        if rng.random() < config.public.shared_infra_fraction:
            # Multi-provider hardware: one box announces several provider
            # ESSIDs from sibling BSSIDs (§4.3).
            n_extra = int(rng.integers(1, 3))
            while len(essids) < 1 + n_extra:
                other, _ = provider_essid_for(rng)
                if other not in essids:
                    essids.append(other)
        for offset, name in enumerate(essids):
            ap = AccessPoint(
                ap_id=next_id,
                bssid=sibling_bssid(base_bssid, offset),
                essid=name,
                band=band,
                channel=channel,
                location=location,
                ap_type=APType.PUBLIC,
                rssi_model=PUBLIC_RSSI,
                coverage_m=120.0,
            )
            deployment.aps[next_id] = ap
            _index_venue_ap(deployment, ap)
            next_id += 1
            built += 1
            if built >= config.public.n_aps:
                break
    return next_id


def _build_open_universe(
    deployment: Deployment, next_id: int, config: DeploymentConfig, rng: np.random.Generator
) -> int:
    for _ in range(config.open_ap_count):
        location = _pick_public_location(rng)
        ap = AccessPoint(
            ap_id=next_id,
            bssid=random_bssid(rng),
            essid=open_venue_essid(rng),
            band=Band.GHZ_2_4,
            channel=ChannelPlanner(mode="auto").assign(rng),
            location=location,
            ap_type=APType.OPEN,
            rssi_model=PUBLIC_RSSI,
            coverage_m=60.0,
        )
        deployment.aps[next_id] = ap
        _index_venue_ap(deployment, ap, public=False)
        next_id += 1
    return next_id


def _index_venue_ap(deployment: Deployment, ap: AccessPoint, public: bool = True) -> None:
    cell = cell_index(ap.location)
    deployment.venue_aps_by_cell.setdefault(cell, []).append(ap.ap_id)
    if public:
        n24, n5 = deployment.public_counts_by_cell.get(cell, (0, 0))
        if ap.band is Band.GHZ_2_4:
            n24 += 1
        else:
            n5 += 1
        deployment.public_counts_by_cell[cell] = (n24, n5)


def _assign_familiar_open_aps(
    deployment: Deployment, profiles: List[UserProfile], rng: np.random.Generator
) -> None:
    """Give engaged users credentials for a couple of open venue networks."""
    open_ids = [
        ap_id for ap_id, ap in deployment.aps.items() if ap.ap_type is APType.OPEN
    ]
    if not open_ids:
        return
    for profile in profiles:
        if profile.wifi_policy is not WifiPolicy.ALWAYS_ON:
            continue
        if rng.random() < 0.6:
            n = int(rng.integers(1, 3))
            picks = rng.choice(open_ids, size=min(n, len(open_ids)), replace=False)
            deployment.familiar_open_aps[profile.user_id] = [int(p) for p in picks]
