"""Public WiFi provider networks (§1, §3.4.1, §3.5).

Cellular providers deploy free APs for their customers (0000docomo,
0001softbank, au_Wi-Fi) with SIM-based authentication since 2013 (§4.2);
free/commercial providers (7Spot, Metro Free Wi-Fi, Wi2) and eduroam round
out the well-known public ESSIDs the classifier keys on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: (essid, deployment weight, carrier restriction or None).
PROVIDER_ESSIDS: Tuple[Tuple[str, float, Optional[str]], ...] = (
    ("0000docomo", 0.28, "docomo"),
    ("0001softbank", 0.22, "softbank"),
    ("au_Wi-Fi", 0.16, "au"),
    ("7SPOT", 0.10, None),
    ("Metro_Free_Wi-Fi", 0.08, None),
    ("Wi2premium", 0.08, None),
    ("Famima_Wi-Fi", 0.04, None),
    ("LAWSON_Free_Wi-Fi", 0.03, None),
    ("Japan_Free_WiFi", 0.01, None),
)


@dataclass(frozen=True)
class PublicWifiConfig:
    """Year knobs for the public deployment.

    ``n_aps`` sizes the deployed universe (the dataset only ever sees the
    subset users detect/associate with); ``fraction_5ghz`` tracks the
    aggressive 5 GHz rollout in public spaces (Figure 14);
    ``open_venue_share`` is the share of venue APs that are shop/hotel open
    networks rather than well-known providers (classified "other" by §3.4.1).
    """

    year: int
    n_aps: int
    fraction_5ghz: float
    open_venue_share: float = 0.06
    sim_auth: bool = True
    #: Share of public APs deployed as multi-provider hardware announcing
    #: several ESSIDs from sibling BSSIDs (§4.3).
    shared_infra_fraction: float = 0.10

    def __post_init__(self) -> None:
        if self.n_aps < 0:
            raise ConfigurationError(f"n_aps must be >= 0: {self.n_aps}")
        if not 0.0 <= self.fraction_5ghz <= 1.0:
            raise ConfigurationError("fraction_5ghz must be in [0, 1]")
        if not 0.0 <= self.open_venue_share <= 1.0:
            raise ConfigurationError("open_venue_share must be in [0, 1]")
        if not 0.0 <= self.shared_infra_fraction <= 1.0:
            raise ConfigurationError("shared_infra_fraction must be in [0, 1]")


#: Normalized once so each draw skips the array build (draws unchanged).
_PROVIDER_WEIGHTS = np.array([w for _, w, _ in PROVIDER_ESSIDS])
_PROVIDER_P = _PROVIDER_WEIGHTS / _PROVIDER_WEIGHTS.sum()


def provider_essid_for(rng: np.random.Generator) -> Tuple[str, Optional[str]]:
    """Sample a provider ESSID; returns (essid, carrier restriction)."""
    idx = int(rng.choice(len(PROVIDER_ESSIDS), p=_PROVIDER_P))
    essid, _, carrier = PROVIDER_ESSIDS[idx]
    return essid, carrier


def open_venue_essid(rng: np.random.Generator) -> str:
    """An open shop/hotel network name (not in the public-provider list)."""
    kind = rng.choice(["cafe", "hotel", "shop", "restaurant"])
    return f"{kind}-guest-{int(rng.integers(0, 10000)):04d}"
