"""Coordinate primitives and coarse (5 km) quantization.

The study area is the Greater Tokyo region. Distances there are small enough
that we use a local equirectangular approximation anchored at the region
center for cell indexing, and the haversine formula for exact great-circle
distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.constants import GEO_PRECISION_KM
from repro.errors import ConfigurationError

EARTH_RADIUS_KM = 6371.0088

#: Anchor of the local grid (approximately Tokyo station).
ANCHOR_LAT = 35.681
ANCHOR_LON = 139.767


@dataclass(frozen=True)
class Coordinate:
    """A WGS-84 latitude/longitude pair in decimal degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ConfigurationError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ConfigurationError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "Coordinate") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)


def haversine_km(a: Coordinate, b: Coordinate) -> float:
    """Great-circle distance between two coordinates in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + (
        math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    )
    return 2.0 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def _km_offsets(coord: Coordinate) -> tuple[float, float]:
    """East/north offsets in km from the grid anchor (equirectangular)."""
    east = (
        math.radians(coord.lon - ANCHOR_LON)
        * EARTH_RADIUS_KM
        * math.cos(math.radians(ANCHOR_LAT))
    )
    north = math.radians(coord.lat - ANCHOR_LAT) * EARTH_RADIUS_KM
    return east, north


def cell_index(coord: Coordinate, cell_km: float = GEO_PRECISION_KM) -> tuple[int, int]:
    """Index of the ``cell_km`` square grid cell containing ``coord``.

    The index is (column, row) relative to the anchor; negative indices are
    valid for cells west/south of the anchor.
    """
    if cell_km <= 0:
        raise ConfigurationError(f"cell size must be positive: {cell_km}")
    east, north = _km_offsets(coord)
    return math.floor(east / cell_km), math.floor(north / cell_km)


def cell_center(
    index: tuple[int, int], cell_km: float = GEO_PRECISION_KM
) -> Coordinate:
    """Coordinate of the center of grid cell ``index``."""
    if cell_km <= 0:
        raise ConfigurationError(f"cell size must be positive: {cell_km}")
    col, row = index
    east = (col + 0.5) * cell_km
    north = (row + 0.5) * cell_km
    lat = ANCHOR_LAT + math.degrees(north / EARTH_RADIUS_KM)
    lon = ANCHOR_LON + math.degrees(
        east / (EARTH_RADIUS_KM * math.cos(math.radians(ANCHOR_LAT)))
    )
    return Coordinate(lat, lon)


def quantize(coord: Coordinate, cell_km: float = GEO_PRECISION_KM) -> Coordinate:
    """Coarsen ``coord`` to the center of its grid cell.

    This is what the measurement agent reports: a location rounded to 5 km
    precision for privacy (§2).
    """
    return cell_center(cell_index(coord, cell_km), cell_km)
