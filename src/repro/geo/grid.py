"""Grid-cell accumulators used by the AP-density analyses (Figure 10, §3.5).

A :class:`DensityGrid` counts distinct items (e.g. unique APs) per 5 km cell
and renders the counts as a dense 2-D array for map-style output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, Set, Tuple

import numpy as np

from repro.constants import GEO_PRECISION_KM
from repro.errors import DatasetError
from repro.geo.coords import Coordinate, cell_center, cell_index

CellIndex = Tuple[int, int]


@dataclass(frozen=True)
class GridCell:
    """A single grid cell with its index, center, and item count."""

    index: CellIndex
    center: Coordinate
    count: int


@dataclass
class DensityGrid:
    """Counts distinct hashable items per grid cell.

    Adding the same item to the same cell twice is idempotent, matching the
    paper's "number of associated *unique* APs per 5 km cell" (Figure 10).
    """

    cell_km: float = GEO_PRECISION_KM
    _cells: Dict[CellIndex, Set[Hashable]] = field(default_factory=dict)

    def add(self, coord: Coordinate, item: Hashable) -> None:
        """Record ``item`` as present in the cell containing ``coord``."""
        idx = cell_index(coord, self.cell_km)
        self._cells.setdefault(idx, set()).add(item)

    def count(self, index: CellIndex) -> int:
        """Number of distinct items recorded in cell ``index``."""
        return len(self._cells.get(index, ()))

    def cells(self) -> Iterator[GridCell]:
        """Iterate non-empty cells in deterministic (row, col) order."""
        for idx in sorted(self._cells, key=lambda i: (i[1], i[0])):
            yield GridCell(idx, cell_center(idx, self.cell_km), len(self._cells[idx]))

    def __len__(self) -> int:
        return len(self._cells)

    def n_cells_with_at_least(self, threshold: int) -> int:
        """Number of cells whose distinct-item count is >= ``threshold``.

        Used for the paper's "cells with at least one AP" / "cells with more
        than 100 APs" style statistics (§3.4.1, §3.5).
        """
        if threshold < 1:
            raise DatasetError(f"threshold must be >= 1, got {threshold}")
        return sum(1 for items in self._cells.values() if len(items) >= threshold)

    def max_count(self) -> int:
        """Largest per-cell count (0 for an empty grid)."""
        if not self._cells:
            return 0
        return max(len(items) for items in self._cells.values())

    def to_array(self) -> Tuple[np.ndarray, CellIndex]:
        """Render as a dense array of counts.

        Returns ``(array, origin)`` where ``array[row, col]`` is the count for
        cell ``(origin_col + col, origin_row + row)``.
        """
        if not self._cells:
            return np.zeros((0, 0), dtype=np.int64), (0, 0)
        cols = [idx[0] for idx in self._cells]
        rows = [idx[1] for idx in self._cells]
        origin = (min(cols), min(rows))
        shape = (max(rows) - origin[1] + 1, max(cols) - origin[0] + 1)
        array = np.zeros(shape, dtype=np.int64)
        for (col, row), items in self._cells.items():
            array[row - origin[1], col - origin[0]] = len(items)
        return array, origin
