"""Named Greater-Tokyo places used to lay out the synthetic study region.

The coordinates are the real locations of the cities labelled in the paper's
Figure 10 maps. The simulator distributes homes, offices, and public venues
around these anchors so the reproduced density maps have the same spatial
structure (dense downtown, dispersed residential belt).
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate

#: City anchors shown on the Figure 10 maps, plus the two downtown wards the
#: paper names as the highest-density public-WiFi areas (§3.4.1).
PLACES: Dict[str, Coordinate] = {
    "tokyo": Coordinate(35.681, 139.767),
    "shinjuku": Coordinate(35.690, 139.700),
    "shibuya": Coordinate(35.658, 139.702),
    "yokohama": Coordinate(35.466, 139.622),
    "kawasaki": Coordinate(35.531, 139.703),
    "chiba": Coordinate(35.607, 140.106),
    "saitama": Coordinate(35.861, 139.645),
    "funabashi": Coordinate(35.695, 139.983),
    "hachioji": Coordinate(35.666, 139.316),
    "narita": Coordinate(35.776, 140.318),
    "odawara": Coordinate(35.265, 139.152),
    "yokosuka": Coordinate(35.281, 139.672),
}

#: Bounding box of the study region (roughly covers all PLACES with margin).
TOKYO_REGION = {
    "lat_min": 35.15,
    "lat_max": 36.00,
    "lon_min": 139.00,
    "lon_max": 140.45,
}


def place(name: str) -> Coordinate:
    """Look up a named place; raises ``ConfigurationError`` if unknown."""
    try:
        return PLACES[name.lower()]
    except KeyError:
        known = ", ".join(sorted(PLACES))
        raise ConfigurationError(f"unknown place {name!r}; known places: {known}") from None
