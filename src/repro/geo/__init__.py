"""Geolocation substrate: coordinates, 5 km quantization, and grid cells.

The measurement agent reports only coarse geolocation (5 km precision, §2);
this package provides the coordinate math the agent and the analysis share.
"""

from repro.geo.coords import (
    Coordinate,
    haversine_km,
    quantize,
    cell_index,
    cell_center,
)
from repro.geo.grid import GridCell, DensityGrid
from repro.geo.places import PLACES, place, TOKYO_REGION

__all__ = [
    "Coordinate",
    "haversine_km",
    "quantize",
    "cell_index",
    "cell_center",
    "GridCell",
    "DensityGrid",
    "PLACES",
    "place",
    "TOKYO_REGION",
]
