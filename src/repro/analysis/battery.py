"""Battery drain vs WiFi state (extension of §2 / Table 9's battery concern).

The agent records battery status; Table 9 shows users citing "battery drain"
as a reason to keep WiFi off, while §4.2(4) concludes battery life was *not*
actually a significant factor. This analysis quantifies that: the mean
discharge rate (percent per hour, charging samples excluded) by the device's
WiFi state at the time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import SAMPLES_PER_HOUR
from repro.errors import AnalysisError
from repro.traces.query import SlotIndex
from repro.traces.records import WifiStateCode

_STATE_NAMES = {
    int(WifiStateCode.OFF): "wifi_off",
    int(WifiStateCode.AVAILABLE): "wifi_available",
    int(WifiStateCode.ASSOCIATED): "wifi_associated",
}


@dataclass(frozen=True)
class BatteryDrain:
    """Mean discharge rates by WiFi state."""

    year: int
    #: state name -> mean drain in percent per hour (positive = discharging).
    drain_pct_per_hour: Dict[str, float]
    n_samples: Dict[str, int]
    charging_fraction: float

    def extra_cost_of_wifi(self) -> float:
        """Drain difference: WiFi on (any) minus WiFi off, %/hour."""
        off = self.drain_pct_per_hour.get("wifi_off")
        on_states = [
            self.drain_pct_per_hour[k]
            for k in ("wifi_available", "wifi_associated")
            if k in self.drain_pct_per_hour
        ]
        if off is None or not on_states:
            raise AnalysisError("need both on and off states to compare")
        return float(np.mean(on_states)) - off


def battery_drain(data: DatasetOrContext) -> BatteryDrain:
    """Per-WiFi-state battery discharge rates (Android devices)."""
    dataset = AnalysisContext.of(data).dataset()
    battery = dataset.battery
    if len(battery) == 0:
        raise AnalysisError("dataset has no battery samples")
    wifi = dataset.wifi
    if len(wifi) == 0:
        raise AnalysisError("dataset has no wifi observations")

    n_slots = dataset.n_slots
    # Consecutive-sample drain per device: level[i] - level[i+1] over the
    # slot gap, skipping device boundaries and charging samples.
    device = battery.device.astype(np.int64)
    t = battery.t.astype(np.int64)
    level = battery.level.astype(np.float64)
    charging = battery.charging.astype(bool)
    same_device = device[1:] == device[:-1]
    gap = t[1:] - t[:-1]
    usable = same_device & (gap > 0) & ~charging[1:] & ~charging[:-1]
    drain_per_hour = (level[:-1] - level[1:]) / (gap / SAMPLES_PER_HOUR)

    # WiFi state of the *later* sample, joined via the sorted slot index.
    index = SlotIndex.build(wifi.device, wifi.t, n_slots)
    pos, matched = index.lookup(device[1:], t[1:])

    drains: Dict[str, list] = {name: [] for name in _STATE_NAMES.values()}
    idx = np.flatnonzero(usable & matched)
    states = index.gather(wifi.state, pos[idx])
    values = drain_per_hour[idx]
    for code, name in _STATE_NAMES.items():
        sel = states == code
        if sel.any():
            drains[name] = values[sel]

    rates = {}
    counts = {}
    for name, arr in drains.items():
        if len(arr) == 0:
            continue
        rates[name] = float(np.mean(arr))
        counts[name] = int(len(arr))
    if not rates:
        raise AnalysisError("no joinable battery/wifi samples")
    return BatteryDrain(
        year=dataset.year,
        drain_pct_per_hour=rates,
        n_samples=counts,
        charging_fraction=float(charging.mean()),
    )
