"""Daily per-user traffic volume (Figures 3-4, Table 3, §3.2).

Distributions of daily volume per (device, day): total RX/TX CDFs across the
three campaigns (Figure 3), per-interface CDFs (Figure 4), and the
median/mean growth table with annual growth rates (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import MIN_DAILY_VOLUME_MB
from repro.errors import AnalysisError
from repro.stats.distributions import Ecdf, ecdf
from repro.stats.growth import annual_growth_rate


@dataclass(frozen=True)
class DailyVolumeDistributions:
    """Per-(device, day) volume CDFs for one campaign (values in MB).

    ``zero_fractions`` maps ``"{kind}_{direction}_zero_fraction"`` keys to
    the fraction of valid device-days with no traffic on that interface
    class; use :meth:`zero_fraction` for checked access.
    """

    year: int
    total_rx: Ecdf
    total_tx: Ecdf
    cdf_by_type: Dict[str, Ecdf]
    zero_fractions: Dict[str, float]

    def zero_fraction(self, kind: str, direction: str = "rx") -> float:
        """Fraction of device-days with no traffic on an interface class.

        Matches §3.2: "8% of cellular interfaces and 20% of WiFi interfaces
        do not send and receive any data."
        """
        key = f"{kind}_{direction}_zero_fraction"
        try:
            return self.zero_fractions[key]
        except KeyError:
            raise AnalysisError(f"no zero-fraction recorded for {key}") from None


def daily_volume_distributions(data: DatasetOrContext) -> DailyVolumeDistributions:
    """Figure 3/4 distributions for one campaign."""
    ctx = AnalysisContext.of(data)
    rx_all = ctx.daily_matrix("all", "rx").ravel() / 1e6
    tx_all = ctx.daily_matrix("all", "tx").ravel() / 1e6
    valid = rx_all >= MIN_DAILY_VOLUME_MB
    if not valid.any():
        raise AnalysisError("no device-days above the volume floor")

    cdf_by_type = {}
    zero_fractions = {}
    for kind in ("cell", "wifi"):
        for direction in ("rx", "tx"):
            values = ctx.daily_matrix(kind, direction).ravel() / 1e6
            values = values[valid]
            zero_fractions[f"{kind}_{direction}_zero_fraction"] = float(
                (values <= 0.0).mean()
            )
            positive = values[values > 0]
            if positive.size:
                cdf_by_type[f"{kind}_{direction}"] = ecdf(positive)

    return DailyVolumeDistributions(
        year=ctx.dataset().year,
        total_rx=ecdf(rx_all[valid]),
        total_tx=ecdf(tx_all[valid]),
        cdf_by_type=cdf_by_type,
        zero_fractions=zero_fractions,
    )


@dataclass(frozen=True)
class VolumeGrowthTable:
    """Table 3: median/mean daily download (MB/day) by year, plus AGR."""

    years: Sequence[int]
    median: Dict[str, Dict[int, float]]
    mean: Dict[str, Dict[int, float]]
    agr_median: Dict[str, float]
    agr_mean: Dict[str, float]

    def row(self, statistic: str, kind: str) -> Dict[int, float]:
        table = self.median if statistic == "median" else self.mean
        return table[kind]


def volume_growth_table(datasets: Sequence[DatasetOrContext]) -> VolumeGrowthTable:
    """Build Table 3 from the three campaign datasets."""
    if len(datasets) < 2:
        raise AnalysisError("growth table needs at least two campaigns")
    contexts = [AnalysisContext.of(ds) for ds in datasets]
    years = [ctx.dataset().year for ctx in contexts]
    median: Dict[str, Dict[int, float]] = {k: {} for k in ("all", "cell", "wifi")}
    mean: Dict[str, Dict[int, float]] = {k: {} for k in ("all", "cell", "wifi")}
    for ctx, year in zip(contexts, years):
        rx_all = ctx.daily_matrix("all", "rx").ravel()
        valid = rx_all >= MIN_DAILY_VOLUME_MB * 1e6
        for kind in ("all", "cell", "wifi"):
            values = ctx.daily_matrix(kind, "rx").ravel()[valid] / 1e6
            median[kind][year] = float(np.median(values))
            mean[kind][year] = float(values.mean())
    agr_median = {
        kind: annual_growth_rate(years, [median[kind][y] for y in years])
        for kind in median
    }
    agr_mean = {
        kind: annual_growth_rate(years, [mean[kind][y] for y in years])
        for kind in mean
    }
    return VolumeGrowthTable(
        years=years, median=median, mean=mean,
        agr_median=agr_median, agr_mean=agr_mean,
    )
