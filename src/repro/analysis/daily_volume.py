"""Daily per-user traffic volume (Figures 3-4, Table 3, §3.2).

Distributions of daily volume per (device, day): total RX/TX CDFs across the
three campaigns (Figure 3), per-interface CDFs (Figure 4), and the
median/mean growth table with annual growth rates (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

import numpy as np

from repro.constants import MIN_DAILY_VOLUME_MB
from repro.errors import AnalysisError
from repro.stats.distributions import Ecdf, ecdf
from repro.stats.growth import annual_growth_rate
from repro.traces.dataset import CampaignDataset


@dataclass(frozen=True)
class DailyVolumeDistributions:
    """Per-(device, day) volume CDFs for one campaign (values in MB)."""

    year: int
    total_rx: Ecdf
    total_tx: Ecdf
    cdf_by_type: Dict[str, Ecdf]

    def zero_fraction(self, kind: str, direction: str = "rx") -> float:
        """Fraction of device-days with no traffic on an interface class.

        Matches §3.2: "8% of cellular interfaces and 20% of WiFi interfaces
        do not send and receive any data."
        """
        key = f"{kind}_{direction}_zero_fraction"
        try:
            return self._zero_fractions[key]
        except (AttributeError, KeyError):
            raise AnalysisError(f"no zero-fraction recorded for {key}") from None


def daily_volume_distributions(dataset: CampaignDataset) -> DailyVolumeDistributions:
    """Figure 3/4 distributions for one campaign."""
    rx_all = dataset.daily_matrix("all", "rx").ravel() / 1e6
    tx_all = dataset.daily_matrix("all", "tx").ravel() / 1e6
    valid = rx_all >= MIN_DAILY_VOLUME_MB
    if not valid.any():
        raise AnalysisError("no device-days above the volume floor")

    cdf_by_type = {}
    zero_fractions = {}
    for kind in ("cell", "wifi"):
        for direction in ("rx", "tx"):
            values = dataset.daily_matrix(kind, direction).ravel() / 1e6
            values = values[valid]
            zero_fractions[f"{kind}_{direction}_zero_fraction"] = float(
                (values <= 0.0).mean()
            )
            positive = values[values > 0]
            if positive.size:
                cdf_by_type[f"{kind}_{direction}"] = ecdf(positive)

    result = DailyVolumeDistributions(
        year=dataset.year,
        total_rx=ecdf(rx_all[valid]),
        total_tx=ecdf(tx_all[valid]),
        cdf_by_type=cdf_by_type,
    )
    object.__setattr__(result, "_zero_fractions", zero_fractions)
    return result


@dataclass(frozen=True)
class VolumeGrowthTable:
    """Table 3: median/mean daily download (MB/day) by year, plus AGR."""

    years: Sequence[int]
    median: Dict[str, Dict[int, float]]
    mean: Dict[str, Dict[int, float]]
    agr_median: Dict[str, float]
    agr_mean: Dict[str, float]

    def row(self, statistic: str, kind: str) -> Dict[int, float]:
        table = self.median if statistic == "median" else self.mean
        return table[kind]


def volume_growth_table(datasets: Sequence[CampaignDataset]) -> VolumeGrowthTable:
    """Build Table 3 from the three campaign datasets."""
    if len(datasets) < 2:
        raise AnalysisError("growth table needs at least two campaigns")
    years = [ds.year for ds in datasets]
    median: Dict[str, Dict[int, float]] = {k: {} for k in ("all", "cell", "wifi")}
    mean: Dict[str, Dict[int, float]] = {k: {} for k in ("all", "cell", "wifi")}
    for ds in datasets:
        rx_all = ds.daily_matrix("all", "rx").ravel()
        valid = rx_all >= MIN_DAILY_VOLUME_MB * 1e6
        for kind in ("all", "cell", "wifi"):
            values = ds.daily_matrix(kind, "rx").ravel()[valid] / 1e6
            median[kind][ds.year] = float(np.median(values))
            mean[kind][ds.year] = float(values.mean())
    agr_median = {
        kind: annual_growth_rate(years, [median[kind][y] for y in years])
        for kind in median
    }
    agr_mean = {
        kind: annual_growth_rate(years, [mean[kind][y] for y in years])
        for kind in mean
    }
    return VolumeGrowthTable(
        years=years, median=median, mean=mean,
        agr_median=agr_median, agr_mean=agr_mean,
    )
