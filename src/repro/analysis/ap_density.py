"""AP density maps (Figure 10) and detected-network coverage (§3.5).

Figure 10 counts *associated* unique APs per 5 km cell, split home vs
public. The §3.5 coverage statistics count *detected* (scanned) public
networks per cell, split all vs strong and 2.4 vs 5 GHz.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import STRONG_RSSI_DBM
from repro.errors import AnalysisError
from repro.geo.coords import cell_center
from repro.geo.grid import DensityGrid
from repro.radio.bands import Band
from repro.traces.dataset import CampaignDataset
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class DensityMaps:
    """Per-class association density grids for one campaign."""

    year: int
    grids: Dict[str, DensityGrid]

    def grid(self, ap_class: str) -> DensityGrid:
        try:
            return self.grids[ap_class]
        except KeyError:
            raise AnalysisError(f"no grid for class {ap_class!r}") from None

    def cells_with_at_least(self, ap_class: str, threshold: int) -> int:
        return self.grid(ap_class).n_cells_with_at_least(threshold)


def association_density_maps(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> DensityMaps:
    """Figure 10: unique associated APs per 5 km cell, home vs public."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    if not assoc.any():
        raise AnalysisError("no associations in dataset")
    device = wifi.device[assoc].astype(np.int64)
    t = wifi.t[assoc].astype(np.int64)
    ap_id = wifi.ap_id[assoc].astype(np.int64)

    cols, rows, found = _lookup_cells(ctx, device, t)
    grids = {name: DensityGrid() for name in ("home", "public", "office", "other")}
    seen = set()
    for i in np.flatnonzero(found):
        a = int(ap_id[i])
        cell = (int(cols[i]), int(rows[i]))
        key = (a, cell)
        if key in seen:
            continue
        seen.add(key)
        cls = classification.wifi_class_of(a)
        if cls == "office":
            grid = grids["office"]
        elif cls in grids:
            grid = grids[cls]
        else:
            grid = grids["other"]
        grid.add(cell_center(cell), a)
    return DensityMaps(year=dataset.year, grids=grids)


@dataclass(frozen=True)
class DetectedCoverage:
    """§3.5: detected public networks per cell (all vs strong, per band)."""

    year: int
    grids: Dict[str, DensityGrid]

    def cells_with_at_least(self, key: str, threshold: int) -> int:
        try:
            return self.grids[key].n_cells_with_at_least(threshold)
        except KeyError:
            raise AnalysisError(f"unknown coverage key {key!r}") from None


def detected_coverage(data: DatasetOrContext) -> DetectedCoverage:
    """Count detected public networks per cell from scan sightings."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    sightings = dataset.sightings
    if len(sightings) == 0:
        raise AnalysisError("dataset has no scan sightings")
    device = sightings.device.astype(np.int64)
    t = sightings.t.astype(np.int64)
    cols, rows, found = _lookup_cells(ctx, device, t)

    grids = {
        "24_all": DensityGrid(), "24_strong": DensityGrid(),
        "5_all": DensityGrid(), "5_strong": DensityGrid(),
    }
    directory = dataset.ap_directory
    for i in np.flatnonzero(found):
        ap_id = int(sightings.ap_id[i])
        entry = directory.get(ap_id)
        if entry is None:
            continue
        center = cell_center((int(cols[i]), int(rows[i])))
        band_key = "24" if entry.band is Band.GHZ_2_4 else "5"
        grids[f"{band_key}_all"].add(center, ap_id)
        if sightings.rssi[i] >= STRONG_RSSI_DBM:
            grids[f"{band_key}_strong"].add(center, ap_id)
    return DetectedCoverage(year=dataset.year, grids=grids)


def _lookup_cells(ctx: AnalysisContext, device: np.ndarray, t: np.ndarray):
    """(device, t) -> geo cell join via the shared memoized slot index."""
    geo = ctx.dataset().geo
    index = ctx.geo_index()
    pos, found = index.lookup(device, t)
    return (
        index.gather(geo.col, pos),
        index.gather(geo.row, pos),
        found,
    )
