"""Android WiFi interface states and the iOS comparison (Figure 9, §3.3.4).

For Android devices, each slot is one of WiFi-user (associated), WiFi-off
(interface off), or WiFi-available (on but unassociated); the three per-hour
ratios of Figure 9(a)/(b) partition the Android panel. iOS only reports the
associated AP, so Figure 9(c) shows just the WiFi-user ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.stats.timeseries import HourlySeries
from repro.traces.query import hour_of
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class InterfaceStateRatios:
    """Per-hour state ratios for one campaign."""

    year: int
    android: Dict[str, HourlySeries]
    ios_user: HourlySeries
    android_means: Dict[str, float]
    ios_user_mean: float

    def folded(self, key: str) -> np.ndarray:
        """Sat->Sat weekly profile for an Android state or 'ios'."""
        if key == "ios":
            return self.ios_user.fold_week()
        try:
            return self.android[key].fold_week()
        except KeyError:
            raise AnalysisError(f"unknown state key {key!r}") from None


def interface_state_ratios(data: DatasetOrContext) -> InterfaceStateRatios:
    """Compute the Figure 9 ratio series."""
    dataset = AnalysisContext.of(data).dataset()
    n_hours = dataset.n_days * 24
    start_weekday = dataset.axis.start.weekday()
    os_codes = dataset.device_os()
    android_ids = np.flatnonzero(os_codes == 0)
    ios_ids = np.flatnonzero(os_codes == 1)
    n_android = len(android_ids)
    n_ios = len(ios_ids)
    if n_android == 0 and n_ios == 0:
        raise AnalysisError("dataset has no devices")

    wifi = dataset.wifi
    hour = hour_of(wifi.t)
    is_android = os_codes[wifi.device] == 0

    android_series: Dict[str, HourlySeries] = {}
    android_means: Dict[str, float] = {}
    state_keys = {
        "wifi_user": int(WifiStateCode.ASSOCIATED),
        "wifi_off": int(WifiStateCode.OFF),
        "wifi_available": int(WifiStateCode.AVAILABLE),
    }
    for key, code in state_keys.items():
        counts = _distinct_device_hours(
            wifi.device, hour, is_android & (wifi.state == code), n_hours
        )
        ratio = counts / n_android if n_android else np.full(n_hours, np.nan)
        android_series[key] = HourlySeries(ratio, start_weekday)
        android_means[key] = float(np.nanmean(ratio))

    ios_assoc = (~is_android) & (wifi.state == int(WifiStateCode.ASSOCIATED))
    ios_counts = _distinct_device_hours(wifi.device, hour, ios_assoc, n_hours)
    ios_ratio = ios_counts / n_ios if n_ios else np.full(n_hours, np.nan)
    ios_series = HourlySeries(ios_ratio, start_weekday)

    return InterfaceStateRatios(
        year=dataset.year,
        android=android_series,
        ios_user=ios_series,
        android_means=android_means,
        ios_user_mean=float(np.nanmean(ios_ratio)),
    )


def ios_android_gap(ratios: InterfaceStateRatios) -> float:
    """How much more iOS connects than Android (relative difference).

    §3.3.4 concludes "iOS devices connect to WiFi 30% more than do Android
    devices"; this returns that relative gap from the campaign means.
    """
    android_user = ratios.android_means["wifi_user"]
    if android_user <= 0:
        raise AnalysisError("android wifi-user ratio is zero")
    return (ratios.ios_user_mean - android_user) / android_user


def _distinct_device_hours(
    device: np.ndarray, hour: np.ndarray, mask: np.ndarray, n_hours: int
) -> np.ndarray:
    """Distinct devices per hour among rows selected by ``mask``."""
    out = np.zeros(n_hours)
    if not mask.any():
        return out
    pair = device[mask].astype(np.int64) * n_hours + hour[mask].astype(np.int64)
    uniq = np.unique(pair)
    np.add.at(out, (uniq % n_hours).astype(np.int64), 1.0)
    return out
