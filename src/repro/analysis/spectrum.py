"""Spectrum usage: 5 GHz adoption (Figure 14) and 2.4 GHz channels (Figure 16).

Both are computed over *associated unique* APs, per classified location
class. 5 GHz rollout is rapid in public networks but slow at home/office;
public 2.4 GHz channels concentrate on the planned 1/6/11 trio while home
channels start Ch1-heavy in 2013 and disperse by 2015.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import NUM_24GHZ_CHANNELS
from repro.errors import AnalysisError
from repro.radio.bands import Band
from repro.traces.dataset import CampaignDataset
from repro.traces.records import WifiStateCode


def _associated_aps(dataset: CampaignDataset) -> Set[int]:
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    return {int(a) for a in np.unique(wifi.ap_id[assoc])}


@dataclass(frozen=True)
class BandFractions:
    """Figure 14: fraction of associated unique APs that are 5 GHz."""

    year: int
    fraction_5ghz: Dict[str, float]
    counts: Dict[str, int]

    def fraction(self, ap_class: str) -> float:
        try:
            return self.fraction_5ghz[ap_class]
        except KeyError:
            raise AnalysisError(f"no band data for class {ap_class!r}") from None


def band_fractions(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> BandFractions:
    """Per-class 5 GHz fractions over associated unique APs."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    aps = _associated_aps(dataset)
    if not aps:
        raise AnalysisError("no associated APs")
    totals: Dict[str, int] = {"home": 0, "office": 0, "public": 0, "other": 0}
    five: Dict[str, int] = dict(totals)
    for ap_id in aps:
        entry = dataset.ap_directory[ap_id]
        cls = classification.ap_class.get(ap_id, "other")
        if cls == "mobile":
            cls = "other"
        totals[cls] += 1
        if entry.band is Band.GHZ_5:
            five[cls] += 1
    fractions = {
        cls: (five[cls] / totals[cls]) if totals[cls] else float("nan")
        for cls in totals
    }
    return BandFractions(year=dataset.year, fraction_5ghz=fractions, counts=totals)


@dataclass(frozen=True)
class ChannelDistributions:
    """Figure 16: PDF over 2.4 GHz channels for home and public APs."""

    year: int
    pdf: Dict[str, np.ndarray]  # class -> length-13 probability vector

    def channel_share(self, ap_class: str, channel: int) -> float:
        if not 1 <= channel <= NUM_24GHZ_CHANNELS:
            raise AnalysisError(f"bad 2.4GHz channel {channel}")
        return float(self._pdf_of(ap_class)[channel - 1])

    def trio_share(self, ap_class: str) -> float:
        """Probability mass on the non-overlapping 1/6/11 trio."""
        p = self._pdf_of(ap_class)
        return float(p[0] + p[5] + p[10])

    def _pdf_of(self, ap_class: str) -> np.ndarray:
        try:
            return self.pdf[ap_class]
        except KeyError:
            raise AnalysisError(
                f"no observed 2.4GHz APs of class {ap_class!r}"
            ) from None


def channel_distributions(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
    classes: tuple = ("home", "public"),
) -> ChannelDistributions:
    """Channel PDFs over associated unique 2.4 GHz APs per class."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    aps = _associated_aps(dataset)
    counts = {cls: np.zeros(NUM_24GHZ_CHANNELS) for cls in classes}
    for ap_id in aps:
        entry = dataset.ap_directory[ap_id]
        if entry.band is not Band.GHZ_2_4:
            continue
        cls = classification.wifi_class_of(ap_id)
        if cls in counts:
            counts[cls][entry.channel - 1] += 1
    pdf = {}
    for cls, vec in counts.items():
        total = vec.sum()
        if total == 0:
            # Tiny panels may observe no 2.4 GHz APs of a class; omit it.
            continue
        pdf[cls] = vec / total
    if not pdf:
        raise AnalysisError(f"no 2.4GHz APs of any class in {classes}")
    return ChannelDistributions(year=dataset.year, pdf=pdf)
