"""Availability of public WiFi to WiFi-available users (Figure 17, §3.5).

Figure 17: CCDF of the number of detected public networks per
WiFi-available device per 10 minutes, split by band and by strong signal.

The §3.5 offload estimate: slots where a WiFi-available device detects at
least one strong public network are *offloadable*; the cellular download
volume in those slots, as a fraction of those devices' total cellular
download, is the traffic that could move to public WiFi (the paper finds
15-20%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.stats.distributions import Ecdf, ccdf
from repro.traces.dataset import CampaignDataset
from repro.traces.records import IfaceKind, WifiStateCode


@dataclass(frozen=True)
class PublicAvailability:
    """Figure 17 CCDFs over available-state scan samples."""

    year: int
    ccdfs: Dict[str, Ecdf]
    n_samples: int

    def ccdf(self, key: str) -> Ecdf:
        try:
            return self.ccdfs[key]
        except KeyError:
            raise AnalysisError(
                f"unknown availability key {key!r}; have {sorted(self.ccdfs)}"
            ) from None

    def fraction_seeing(self, key: str, at_least: int) -> float:
        """Fraction of samples detecting >= ``at_least`` networks."""
        dist = self.ccdf(key)
        if at_least <= 0:
            return 1.0
        return dist.at(at_least - 1) if False else float(
            (dist.values >= at_least).sum() / dist.n
        )


def _available_scan_mask(dataset: CampaignDataset) -> np.ndarray:
    """Mask over scan rows taken while the device was WiFi-available."""
    wifi = dataset.wifi
    available = wifi.state == int(WifiStateCode.AVAILABLE)
    n_slots = dataset.n_slots
    avail_keys = np.sort(
        wifi.device[available].astype(np.int64) * n_slots
        + wifi.t[available].astype(np.int64)
    )
    scans = dataset.scans
    scan_keys = scans.device.astype(np.int64) * n_slots + scans.t.astype(np.int64)
    pos = np.searchsorted(avail_keys, scan_keys)
    pos = np.clip(pos, 0, max(len(avail_keys) - 1, 0))
    if len(avail_keys) == 0:
        return np.zeros(len(scan_keys), dtype=bool)
    return avail_keys[pos] == scan_keys


def public_availability(data: DatasetOrContext) -> PublicAvailability:
    """Figure 17: detected public networks per available device-slot."""
    dataset = AnalysisContext.of(data).dataset()
    scans = dataset.scans
    if len(scans) == 0:
        raise AnalysisError("dataset has no scan summaries")
    mask = _available_scan_mask(dataset)
    if not mask.any():
        raise AnalysisError("no scans in WiFi-available state")
    ccdfs = {
        "24_all": ccdf(scans.n24_all[mask]),
        "24_strong": ccdf(scans.n24_strong[mask]),
        "5_all": ccdf(scans.n5_all[mask]),
        "5_strong": ccdf(scans.n5_strong[mask]),
    }
    return PublicAvailability(
        year=dataset.year, ccdfs=ccdfs, n_samples=int(mask.sum())
    )


@dataclass(frozen=True)
class OffloadEstimate:
    """§3.5: how much cellular traffic could move to public WiFi."""

    year: int
    #: Fraction of WiFi-available devices that encounter >= 1 strong public
    #: network during the campaign ("have opportunities": ~60%).
    devices_with_opportunity: float
    #: Offloadable share of those devices' cellular download (15-20%).
    offloadable_fraction: float
    n_available_devices: int


def offload_estimate(data: DatasetOrContext) -> OffloadEstimate:
    """Estimate offloadable cellular volume for WiFi-available users."""
    dataset = AnalysisContext.of(data).dataset()
    scans = dataset.scans
    if len(scans) == 0:
        raise AnalysisError("dataset has no scan summaries")
    mask = _available_scan_mask(dataset)
    if not mask.any():
        raise AnalysisError("no scans in WiFi-available state")
    strong = (scans.n24_strong + scans.n5_strong) >= 1
    n_slots = dataset.n_slots
    device = scans.device.astype(np.int64)

    available_devices = np.unique(device[mask])
    opportunity_devices = np.unique(device[mask & strong])
    offload_keys = np.sort(
        device[mask & strong] * n_slots + scans.t[mask & strong].astype(np.int64)
    )

    traffic = dataset.traffic
    cellular = traffic.iface != int(IfaceKind.WIFI)
    in_devices = np.isin(traffic.device, available_devices)
    cell_rows = cellular & in_devices
    total_cell = float(traffic.rx[cell_rows].sum())
    t_keys = (
        traffic.device[cell_rows].astype(np.int64) * n_slots
        + traffic.t[cell_rows].astype(np.int64)
    )
    pos = np.searchsorted(offload_keys, t_keys)
    pos = np.clip(pos, 0, max(len(offload_keys) - 1, 0))
    offloadable_rows = (
        offload_keys[pos] == t_keys if len(offload_keys) else np.zeros_like(t_keys, bool)
    )
    offloadable = float(traffic.rx[cell_rows][offloadable_rows].sum())

    return OffloadEstimate(
        year=dataset.year,
        devices_with_opportunity=(
            len(opportunity_devices) / len(available_devices)
            if len(available_devices)
            else 0.0
        ),
        offloadable_fraction=offloadable / total_cell if total_cell else 0.0,
        n_available_devices=int(len(available_devices)),
    )
