"""WiFi association access patterns (Figure 12, Table 5, Figure 13, §3.4.2).

- Number of distinct APs each device associates with per day, for all users
  and the light/heavy subsets (Figure 12).
- The HPO breakdown: how many Home/Public/Other networks a device-day
  combines (Table 5).
- Consecutive association duration CCDFs per network class (Figure 13).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.analysis.users import UserDayClasses
from repro.constants import SAMPLES_PER_HOUR
from repro.errors import AnalysisError
from repro.stats.distributions import Ecdf, ccdf
from repro.traces.dataset import CampaignDataset
from repro.traces.query import device_day_of
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class ApsPerDay:
    """Figure 12: distribution of distinct associated APs per device-day."""

    year: int
    #: subset -> {1: pct, 2: pct, 3: pct, 4: pct of device-days with >= 4}.
    breakdown: Dict[str, Dict[int, float]]

    def pct(self, subset: str, n_aps: int) -> float:
        return self.breakdown[subset].get(n_aps, 0.0)


@dataclass(frozen=True)
class HpoBreakdown:
    """Table 5: percentage of device-days per (home, public, other) combo."""

    year: int
    #: (n_home, n_public, n_other) -> percentage of WiFi device-days.
    combos: Dict[Tuple[int, int, int], float]
    four_plus_pct: float

    def pct(self, home: int, public: int, other: int) -> float:
        return self.combos.get((home, public, other), 0.0)


def _device_day_aps(
    dataset: CampaignDataset,
) -> Dict[Tuple[int, int], set]:
    """(device, day) -> set of associated ap_ids."""
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    out: Dict[Tuple[int, int], set] = defaultdict(set)
    device = wifi.device[assoc]
    day = device_day_of(wifi.t[assoc])
    ap = wifi.ap_id[assoc]
    for d, dy, a in zip(device, day, ap):
        out[(int(d), int(dy))].add(int(a))
    return out


def aps_per_day(
    data: DatasetOrContext,
    classes: Optional[UserDayClasses] = None,
) -> ApsPerDay:
    """Figure 12 breakdown for all/heavy/light device-days."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classes is None:
        classes = ctx.user_classes()
    per_day = _device_day_aps(dataset)
    if not per_day:
        raise AnalysisError("no associations in dataset")
    subsets = {"all": classes.valid, "heavy": classes.heavy, "light": classes.light}
    breakdown: Dict[str, Dict[int, float]] = {}
    for name, mask in subsets.items():
        counts: Dict[int, int] = defaultdict(int)
        total = 0
        for (device, day), aps in per_day.items():
            if not mask[device, day]:
                continue
            total += 1
            counts[min(len(aps), 4)] += 1
        if total == 0:
            breakdown[name] = {}
            continue
        breakdown[name] = {n: 100.0 * c / total for n, c in sorted(counts.items())}
    return ApsPerDay(year=dataset.year, breakdown=breakdown)


def hpo_breakdown(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> HpoBreakdown:
    """Table 5: home/public/other combination percentages per device-day."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    per_day = _device_day_aps(dataset)
    if not per_day:
        raise AnalysisError("no associations in dataset")
    combos: Dict[Tuple[int, int, int], int] = defaultdict(int)
    four_plus = 0
    total = 0
    for (_device, _day), aps in per_day.items():
        total += 1
        if len(aps) >= 4:
            four_plus += 1
            continue
        n_home = n_public = n_other = 0
        for a in aps:
            cls = classification.wifi_class_of(a)
            if cls == "home":
                n_home += 1
            elif cls == "public":
                n_public += 1
            else:
                n_other += 1
        combos[(n_home, n_public, n_other)] += 1
    return HpoBreakdown(
        year=dataset.year,
        combos={k: 100.0 * v / total for k, v in combos.items()},
        four_plus_pct=100.0 * four_plus / total,
    )


@dataclass(frozen=True)
class AssociationDurations:
    """Figure 13: consecutive same-AP association durations (hours)."""

    year: int
    ccdf_by_class: Dict[str, Ecdf]
    p90_hours: Dict[str, float]


def association_durations(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> AssociationDurations:
    """Compute per-class CCDFs of consecutive association time."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    if not assoc.any():
        raise AnalysisError("no associations in dataset")
    device = wifi.device[assoc].astype(np.int64)
    t = wifi.t[assoc].astype(np.int64)
    ap = wifi.ap_id[assoc].astype(np.int64)
    order = np.lexsort((t, device))
    device, t, ap = device[order], t[order], ap[order]

    durations: Dict[str, List[float]] = defaultdict(list)

    def flush(current_ap: int, run_slots: int) -> None:
        cls = classification.wifi_class_of(int(current_ap))
        key = cls if cls in ("home", "public", "office") else "other"
        durations[key].append(run_slots / SAMPLES_PER_HOUR)

    run_ap = -1
    run_len = 0
    prev_dev = -1
    prev_t = -10
    for d, tt, a in zip(device, t, ap):
        contiguous = d == prev_dev and tt == prev_t + 1 and a == run_ap
        if contiguous:
            run_len += 1
        else:
            if run_len > 0:
                flush(run_ap, run_len)
            run_ap = int(a)
            run_len = 1
        prev_dev, prev_t = d, tt
    if run_len > 0:
        flush(run_ap, run_len)

    ccdfs = {}
    p90 = {}
    for cls, values in durations.items():
        arr = np.asarray(values)
        ccdfs[cls] = ccdf(arr)
        p90[cls] = float(np.percentile(arr, 90))
    return AssociationDurations(year=dataset.year, ccdf_by_class=ccdfs, p90_hours=p90)
