"""WiFi traffic volume by AP location class (Figure 11, §3.4.1).

Home networks carry ~95% of WiFi volume; public and office carry ~4%
combined but double between 2013 and 2015, with diurnal patterns opposite
to home.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.stats.timeseries import HourlySeries, bytes_to_mbps
from repro.traces.query import hour_of
from repro.traces.records import IfaceKind


@dataclass(frozen=True)
class LocationTraffic:
    """Per-hour Mbps by (location class, direction), plus volume shares."""

    year: int
    series: Dict[str, HourlySeries]
    volume_share: Dict[str, float]

    def folded_week(self, key: str) -> np.ndarray:
        try:
            return self.series[key].fold_week()
        except KeyError:
            raise AnalysisError(
                f"unknown series {key!r}; have {sorted(self.series)}"
            ) from None


def location_traffic(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> LocationTraffic:
    """Split WiFi traffic into home/public/office/other hourly series."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()

    # Join traffic slots to the AP associated in the same slot.
    index, obs_ap = ctx.association_index()
    if len(index.keys) == 0:
        raise AnalysisError("no WiFi associations to attribute traffic to")

    traffic = dataset.traffic
    wifi_rows = traffic.iface == int(IfaceKind.WIFI)
    pos, found = index.lookup(traffic.device[wifi_rows], traffic.t[wifi_rows])
    ap_of_row = obs_ap[pos]
    classes = np.array(
        [classification.wifi_class_of(int(a)) for a in ap_of_row], dtype=object
    )
    rx = traffic.rx[wifi_rows]
    tx = traffic.tx[wifi_rows]
    hour = hour_of(traffic.t[wifi_rows])

    n_hours = dataset.n_days * 24
    start_weekday = dataset.axis.start.weekday()
    series: Dict[str, HourlySeries] = {}
    totals: Dict[str, float] = {}
    for cls in ("home", "public", "office", "other"):
        mask = found & (classes == cls)
        for direction, values in (("rx", rx), ("tx", tx)):
            hourly = np.zeros(n_hours)
            np.add.at(hourly, hour[mask], values[mask])
            series[f"{cls}_{direction}"] = HourlySeries(
                bytes_to_mbps(hourly), start_weekday
            )
        totals[cls] = float(rx[mask].sum() + tx[mask].sum())
    grand_total = sum(totals.values())
    if grand_total <= 0:
        raise AnalysisError("no attributable WiFi traffic")
    volume_share = {cls: v / grand_total for cls, v in totals.items()}
    return LocationTraffic(year=dataset.year, series=series, volume_share=volume_share)
