"""WiFi traffic volume by AP location class (Figure 11, §3.4.1).

Home networks carry ~95% of WiFi volume; public and office carry ~4%
combined but double between 2013 and 2015, with diurnal patterns opposite
to home.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.ap_classification import APClassification, classify_aps
from repro.constants import SAMPLES_PER_HOUR
from repro.errors import AnalysisError
from repro.stats.timeseries import HourlySeries, bytes_to_mbps
from repro.traces.dataset import CampaignDataset
from repro.traces.records import IfaceKind, WifiStateCode


@dataclass(frozen=True)
class LocationTraffic:
    """Per-hour Mbps by (location class, direction), plus volume shares."""

    year: int
    series: Dict[str, HourlySeries]
    volume_share: Dict[str, float]

    def folded_week(self, key: str) -> np.ndarray:
        try:
            return self.series[key].fold_week()
        except KeyError:
            raise AnalysisError(
                f"unknown series {key!r}; have {sorted(self.series)}"
            ) from None


def location_traffic(
    dataset: CampaignDataset,
    classification: Optional[APClassification] = None,
) -> LocationTraffic:
    """Split WiFi traffic into home/public/office/other hourly series."""
    if classification is None:
        classification = classify_aps(dataset)

    # Join traffic slots to the AP associated in the same slot.
    wifi_obs = dataset.wifi
    assoc = wifi_obs.state == int(WifiStateCode.ASSOCIATED)
    n_slots = dataset.n_slots
    obs_key = (
        wifi_obs.device[assoc].astype(np.int64) * n_slots
        + wifi_obs.t[assoc].astype(np.int64)
    )
    obs_ap = wifi_obs.ap_id[assoc].astype(np.int64)
    order = np.argsort(obs_key)
    obs_key = obs_key[order]
    obs_ap = obs_ap[order]

    traffic = dataset.traffic
    wifi_rows = traffic.iface == int(IfaceKind.WIFI)
    t_key = (
        traffic.device[wifi_rows].astype(np.int64) * n_slots
        + traffic.t[wifi_rows].astype(np.int64)
    )
    pos = np.searchsorted(obs_key, t_key)
    pos = np.clip(pos, 0, max(len(obs_key) - 1, 0))
    found = len(obs_key) > 0 and obs_key[pos] == t_key
    if isinstance(found, bool):
        raise AnalysisError("no WiFi associations to attribute traffic to")

    ap_of_row = obs_ap[pos]
    classes = np.array(
        [classification.wifi_class_of(int(a)) for a in ap_of_row], dtype=object
    )
    rx = traffic.rx[wifi_rows]
    tx = traffic.tx[wifi_rows]
    hour = traffic.t[wifi_rows] // SAMPLES_PER_HOUR

    n_hours = dataset.n_days * 24
    start_weekday = dataset.axis.start.weekday()
    series: Dict[str, HourlySeries] = {}
    totals: Dict[str, float] = {}
    for cls in ("home", "public", "office", "other"):
        mask = found & (classes == cls)
        for direction, values in (("rx", rx), ("tx", tx)):
            hourly = np.zeros(n_hours)
            np.add.at(hourly, hour[mask], values[mask])
            series[f"{cls}_{direction}"] = HourlySeries(
                bytes_to_mbps(hourly), start_weekday
            )
        totals[cls] = float(rx[mask].sum() + tx[mask].sum())
    grand_total = sum(totals.values())
    if grand_total <= 0:
        raise AnalysisError("no attributable WiFi traffic")
    volume_share = {cls: v / grand_total for cls, v in totals.items()}
    return LocationTraffic(year=dataset.year, series=series, volume_share=volume_share)
