"""Offload-impact estimates (§4.1).

Two back-of-envelope numbers the paper derives by combining panel medians
with public statistics:

1. Smartphone WiFi share of total residential broadband volume:
   cellular is 20% of broadband (Figure 1), the panel's WiFi:cellular median
   ratio is ~1.4, and ~95% of WiFi volume is at home, so offloaded
   smartphone traffic is roughly 20% * 1.4 ≈ 28% of broadband volume.
2. One smartphone's share of a home's broadband volume: median smartphone
   WiFi download / median broadband download per customer (436 MB/day in
   2015 [IIJ]) ≈ 12%.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import MIN_DAILY_VOLUME_MB
from repro.errors import AnalysisError

#: Nationwide cellular / residential-broadband volume ratio (Figure 1, [34]).
CELLULAR_SHARE_OF_BROADBAND = 0.20

#: Median residential broadband download per customer per day, 2015 [9].
BROADBAND_MEDIAN_MB_PER_DAY = 436.0


@dataclass(frozen=True)
class OffloadImpact:
    """§4.1 estimates for one campaign."""

    year: int
    median_cell_mb: float
    median_wifi_mb: float
    wifi_to_cell_ratio: float
    wifi_share_of_smartphone: float
    #: Estimated smartphone-WiFi share of total broadband volume (~28%).
    offload_share_of_broadband: float
    #: Estimated one-smartphone share of a home's broadband volume (~12%).
    smartphone_share_of_home_broadband: float


def offload_impact(
    data: DatasetOrContext,
    home_wifi_fraction: float = 0.95,
    cellular_share_of_broadband: float = CELLULAR_SHARE_OF_BROADBAND,
    broadband_median_mb: float = BROADBAND_MEDIAN_MB_PER_DAY,
) -> OffloadImpact:
    """Derive the §4.1 impact estimates from a campaign's medians."""
    if not 0 < home_wifi_fraction <= 1:
        raise AnalysisError("home_wifi_fraction must be in (0, 1]")
    ctx = AnalysisContext.of(data)
    total = ctx.daily_matrix("all", "rx").ravel()
    valid = total >= MIN_DAILY_VOLUME_MB * 1e6
    if not valid.any():
        raise AnalysisError("no valid device-days")
    cell = ctx.daily_matrix("cell", "rx").ravel()[valid] / 1e6
    wifi = ctx.daily_matrix("wifi", "rx").ravel()[valid] / 1e6
    median_cell = float(np.median(cell))
    median_wifi = float(np.median(wifi))
    if median_cell <= 0:
        raise AnalysisError("median cellular volume is zero")
    ratio = median_wifi / median_cell
    wifi_share = median_wifi / (median_wifi + median_cell)
    return OffloadImpact(
        year=ctx.dataset().year,
        median_cell_mb=median_cell,
        median_wifi_mb=median_wifi,
        wifi_to_cell_ratio=ratio,
        wifi_share_of_smartphone=wifi_share,
        offload_share_of_broadband=(
            cellular_share_of_broadband * ratio * home_wifi_fraction
        ),
        smartphone_share_of_home_broadband=median_wifi / broadband_median_mb,
    )
