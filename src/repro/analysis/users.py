"""Light-user / heavy-hitter classification (§2).

"We refer to light users as those whose daily download traffic ranges from
the 40th to 60th percentiles, and heavy hitters as users whose daily download
traffic is ranked in the top 5%. Note that as daily user traffic volume is
highly variable, one user may be a light user one day and heavy hitter on
another." — classification is therefore per (device, day).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import (
    HEAVY_PCTL,
    LIGHT_PCTL_HIGH,
    LIGHT_PCTL_LOW,
    MIN_DAILY_VOLUME_MB,
)
from repro.errors import AnalysisError


@dataclass(frozen=True)
class UserDayClasses:
    """Per-(device, day) classification masks.

    ``volumes`` is the (n_devices, n_days) daily download matrix in bytes;
    ``valid`` marks device-days above the 0.1 MB floor; ``light`` and
    ``heavy`` are subsets of ``valid``.
    """

    volumes: np.ndarray
    valid: np.ndarray
    light: np.ndarray
    heavy: np.ndarray

    @property
    def n_device_days(self) -> int:
        return int(self.valid.sum())

    def fraction_light(self) -> float:
        return float(self.light.sum() / max(self.valid.sum(), 1))

    def fraction_heavy(self) -> float:
        return float(self.heavy.sum() / max(self.valid.sum(), 1))


def classify_user_days(
    data: DatasetOrContext,
    light_low: float = LIGHT_PCTL_LOW,
    light_high: float = LIGHT_PCTL_HIGH,
    heavy_pctl: float = HEAVY_PCTL,
    min_volume_mb: float = MIN_DAILY_VOLUME_MB,
) -> UserDayClasses:
    """Classify every device-day of a campaign by download volume."""
    if not 0 <= light_low < light_high <= 100 or not 0 < heavy_pctl <= 100:
        raise AnalysisError("bad percentile configuration")
    volumes = AnalysisContext.of(data).daily_matrix("all", "rx")
    valid = volumes >= min_volume_mb * 1e6
    light = np.zeros_like(valid)
    heavy = np.zeros_like(valid)
    for day in range(volumes.shape[1]):
        day_valid = valid[:, day]
        day_volumes = volumes[day_valid, day]
        if day_volumes.size < 5:
            continue
        lo = np.percentile(day_volumes, light_low)
        hi = np.percentile(day_volumes, light_high)
        heavy_cut = np.percentile(day_volumes, heavy_pctl)
        light[:, day] = day_valid & (volumes[:, day] >= lo) & (volumes[:, day] < hi)
        heavy[:, day] = day_valid & (volumes[:, day] >= heavy_cut)
    return UserDayClasses(volumes=volumes, valid=valid, light=light, heavy=heavy)
