"""Mobility vs traffic volume (§3.4.2).

The paper finds "user traffic volume does not correlate to the mobility
patterns": heavy hitters and light users associate with similar numbers of
APs per day (Figure 12), and moving around more does not make a user heavier.
This analysis quantifies that with the correlation between a device-day's
mobility (distinct 5 km cells visited, distinct APs associated) and its
download volume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.analysis.users import UserDayClasses
from repro.errors import AnalysisError
from repro.traces.query import device_day_of, distinct_cells_per_device_day
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class MobilityStats:
    """Correlations between mobility and traffic over valid device-days."""

    year: int
    corr_cells_vs_volume: float
    corr_aps_vs_volume: float
    mean_cells_heavy: float
    mean_cells_light: float
    n_device_days: int

    def uncorrelated(self, threshold: float = 0.3) -> bool:
        """Whether mobility and volume are (at most) weakly related."""
        return abs(self.corr_cells_vs_volume) < threshold


def mobility_stats(
    data: DatasetOrContext,
    classes: Optional[UserDayClasses] = None,
) -> MobilityStats:
    """Compute the §3.4.2 mobility/traffic (non-)correlation."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classes is None:
        classes = ctx.user_classes()
    cells = distinct_cells_per_device_day(dataset)
    volumes = classes.volumes
    valid = classes.valid
    if not valid.any():
        raise AnalysisError("no valid device-days")

    aps = np.zeros_like(cells)
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    if assoc.any():
        day = device_day_of(wifi.t[assoc].astype(np.int64))
        triples = np.stack(
            [wifi.device[assoc].astype(np.int64), day,
             wifi.ap_id[assoc].astype(np.int64)],
            axis=1,
        )
        distinct = np.unique(triples, axis=0)
        np.add.at(aps, (distinct[:, 0], distinct[:, 1]), 1)

    log_volume = np.log10(np.maximum(volumes[valid], 1.0))
    corr_cells = _safe_corr(cells[valid].astype(float), log_volume)
    corr_aps = _safe_corr(aps[valid].astype(float), log_volume)

    heavy = classes.heavy & valid
    light = classes.light & valid
    return MobilityStats(
        year=dataset.year,
        corr_cells_vs_volume=corr_cells,
        corr_aps_vs_volume=corr_aps,
        mean_cells_heavy=float(cells[heavy].mean()) if heavy.any() else float("nan"),
        mean_cells_light=float(cells[light].mean()) if light.any() else float("nan"),
        n_device_days=int(valid.sum()),
    )


def _safe_corr(a: np.ndarray, b: np.ndarray) -> float:
    if a.size < 3 or a.std() == 0 or b.std() == 0:
        return float("nan")
    return float(np.corrcoef(a, b)[0, 1])
