"""WiFi signal quality (Figure 15, §3.4.4).

Per associated 2.4 GHz AP, the maximum observed RSSI over the campaign; home
networks form a bell around -54 dBm (3% below -70), public networks shift to
about -60 dBm with 12% below the -70 dBm usability threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import STRONG_RSSI_DBM
from repro.errors import AnalysisError
from repro.radio.bands import Band
from repro.stats.distributions import pdf_histogram
from repro.traces.dataset import CampaignDataset
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class RssiDistributions:
    """Per-class max-RSSI samples, PDFs, and weak-signal fractions."""

    year: int
    samples: Dict[str, np.ndarray]
    mean: Dict[str, float]
    weak_fraction: Dict[str, float]

    def pdf(self, ap_class: str, bins: int = 36) -> Tuple[np.ndarray, np.ndarray]:
        try:
            values = self.samples[ap_class]
        except KeyError:
            raise AnalysisError(f"no RSSI data for class {ap_class!r}") from None
        return pdf_histogram(values, bins=bins, range_=(-95.0, -20.0))


def rssi_distributions(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
    classes: tuple = ("home", "public", "office"),
    weak_threshold: float = STRONG_RSSI_DBM,
) -> RssiDistributions:
    """Figure 15: per-AP max RSSI distributions by class (2.4 GHz only)."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    if not assoc.any():
        raise AnalysisError("no associations in dataset")
    ap_id = wifi.ap_id[assoc].astype(np.int64)
    rssi = wifi.rssi[assoc].astype(np.float64)

    # Max RSSI per AP via sort + reduceat.
    order = np.argsort(ap_id)
    ap_sorted = ap_id[order]
    rssi_sorted = rssi[order]
    boundaries = np.flatnonzero(np.diff(ap_sorted)) + 1
    starts = np.concatenate(([0], boundaries))
    unique_aps = ap_sorted[starts]
    max_rssi = np.maximum.reduceat(rssi_sorted, starts)

    samples: Dict[str, list] = {cls: [] for cls in classes}
    for a, r in zip(unique_aps, max_rssi):
        entry = dataset.ap_directory[int(a)]
        if entry.band is not Band.GHZ_2_4:
            continue
        cls = classification.wifi_class_of(int(a))
        if cls in samples:
            samples[cls].append(float(r))

    arrays = {}
    mean = {}
    weak = {}
    for cls, values in samples.items():
        if not values:
            continue
        arr = np.asarray(values)
        arrays[cls] = arr
        mean[cls] = float(arr.mean())
        weak[cls] = float((arr < weak_threshold).mean())
    if not arrays:
        raise AnalysisError("no 2.4GHz associated APs with RSSI")
    return RssiDistributions(
        year=dataset.year, samples=arrays, mean=mean, weak_fraction=weak
    )
