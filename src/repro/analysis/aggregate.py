"""Aggregated traffic behaviour (Figure 2, §3.1).

Weekly variation of cellular and WiFi volume in Mbps, TX and RX, plus the
headline shares: WiFi fraction of total volume (59% -> 67%) and LTE fraction
of cellular volume (32% -> 80%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import SAMPLES_PER_DAY
from repro.errors import AnalysisError
from repro.stats.timeseries import HourlySeries, bytes_to_mbps


@dataclass(frozen=True)
class AggregateTraffic:
    """Per-hour Mbps series for one campaign, by interface and direction."""

    year: int
    series: Dict[str, HourlySeries]
    wifi_share: float
    lte_share_of_cellular: float

    def folded_week(self, key: str) -> np.ndarray:
        """Mean Mbps per hour of a Sat->Sat week for ``key``."""
        try:
            return self.series[key].fold_week()
        except KeyError:
            raise AnalysisError(
                f"unknown series {key!r}; have {sorted(self.series)}"
            ) from None


def aggregate_traffic(data: DatasetOrContext) -> AggregateTraffic:
    """Compute the Figure 2 series and headline shares."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    start_weekday = dataset.axis.start.weekday()
    series = {}
    for kind, direction, key in (
        ("cell", "rx", "cellular_rx"),
        ("cell", "tx", "cellular_tx"),
        ("wifi", "rx", "wifi_rx"),
        ("wifi", "tx", "wifi_tx"),
    ):
        hourly = ctx.hourly_series(kind, direction)
        series[key] = HourlySeries(bytes_to_mbps(hourly), start_weekday)

    wifi_total = ctx.daily_matrix("wifi", "rx").sum() + (
        ctx.daily_matrix("wifi", "tx").sum()
    )
    cell_total = ctx.daily_matrix("cell", "rx").sum() + (
        ctx.daily_matrix("cell", "tx").sum()
    )
    lte_total = ctx.daily_matrix("lte", "rx").sum() + (
        ctx.daily_matrix("lte", "tx").sum()
    )
    total = wifi_total + cell_total
    if total <= 0:
        raise AnalysisError("campaign carries no traffic")
    return AggregateTraffic(
        year=dataset.year,
        series=series,
        wifi_share=float(wifi_total / total),
        lte_share_of_cellular=float(lte_total / cell_total) if cell_total else 0.0,
    )


def weekend_weekday_ratio(data: DatasetOrContext, kind: str) -> float:
    """Mean daily volume on weekends divided by weekdays, for one interface.

    §3.1: "Cellular traffic on weekends is smaller than that on weekdays,
    while WiFi traffic is the opposite" — so this ratio should sit below 1
    for ``kind="cell"`` and above 1 for ``kind="wifi"``.
    """
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    daily = ctx.daily_matrix(kind, "rx").sum(axis=0)
    weekdays = np.array([
        int(dataset.axis.weekday_of(day * SAMPLES_PER_DAY))
        for day in range(dataset.n_days)
    ])
    weekend = weekdays >= 5
    if not weekend.any() or weekend.all():
        raise AnalysisError("campaign lacks both weekend and weekday days")
    weekend_mean = daily[weekend].mean()
    weekday_mean = daily[~weekend].mean()
    if weekday_mean <= 0:
        raise AnalysisError("no weekday traffic")
    return float(weekend_mean / weekday_mean)


def diurnal_peaks(data: DatasetOrContext, kind: str, top_n: int = 3) -> np.ndarray:
    """Hours of day (0-23) with the highest mean download volume.

    §3.1 reports cellular RX peaks at 8:00, noon, and 19:00-21:00 driven by
    commutes, and WiFi peaking 23:00-01:00 at home.
    """
    ctx = AnalysisContext.of(data)
    hourly = ctx.hourly_series(kind, "rx")
    by_hour = hourly.reshape(ctx.dataset().n_days, 24).mean(axis=0)
    return np.argsort(by_hour)[::-1][:top_n]


def peak_hours(profile: np.ndarray, top_n: int = 3) -> np.ndarray:
    """Hour-of-week indexes of the ``top_n`` peaks of a folded profile."""
    if profile.ndim != 1:
        raise AnalysisError("profile must be 1-D")
    finite = np.where(np.isnan(profile), -np.inf, profile)
    return np.argsort(finite)[::-1][:top_n]
