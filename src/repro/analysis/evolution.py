"""Cross-campaign evolution summaries (Table 1 and the longitudinal view).

These helpers aggregate per-year analyses over a
:class:`~repro.simulation.study.Study`-like mapping of year -> dataset so
the three-year comparisons (the heart of the paper) come from one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Sequence

from repro.analysis.aggregate import aggregate_traffic
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.traces.dataset import CampaignDataset
from repro.traces.records import DeviceOS


@dataclass(frozen=True)
class CampaignOverview:
    """One Table 1 row."""

    year: int
    start: str
    end: str
    n_android: int
    n_ios: int
    n_total: int
    lte_share: float


def campaign_overview(data: DatasetOrContext) -> CampaignOverview:
    """Table 1 row for one campaign (panel sizes and LTE share)."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    n_android = sum(1 for d in dataset.devices if d.os is DeviceOS.ANDROID)
    n_ios = len(dataset.devices) - n_android
    if not dataset.devices:
        raise AnalysisError("dataset has no devices")
    agg = aggregate_traffic(ctx)
    start = dataset.axis.slot_datetime(0).date()
    end = dataset.axis.slot_datetime(dataset.n_slots - 1).date()
    return CampaignOverview(
        year=dataset.year,
        start=start.isoformat(),
        end=end.isoformat(),
        n_android=n_android,
        n_ios=n_ios,
        n_total=n_android + n_ios,
        lte_share=agg.lte_share_of_cellular,
    )


def overview_table(datasets: Mapping[int, CampaignDataset]) -> Sequence[CampaignOverview]:
    """Table 1 for every campaign, ordered by year."""
    return [campaign_overview(datasets[year]) for year in sorted(datasets)]


def yearly(
    datasets: Mapping[int, CampaignDataset],
    analysis: Callable[[CampaignDataset], object],
) -> Dict[int, object]:
    """Run ``analysis`` on every campaign; returns {year: result}."""
    return {year: analysis(datasets[year]) for year in sorted(datasets)}
