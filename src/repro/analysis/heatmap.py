"""Cellular-vs-WiFi per-user-day heat map (Figure 5, §3.3.1).

Each (device, day) is a point at (cellular MB, WiFi MB) on log-log axes.
Three user types fall out: cellular-intensive (no WiFi), WiFi-intensive
(no cellular), and mixed users; among mixed users, those above the diagonal
offload more than they use cellular.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import MIN_DAILY_VOLUME_MB
from repro.errors import AnalysisError

#: Below this daily volume an interface counts as unused (log-plot floor).
INTENSIVE_FLOOR_MB = 0.01


@dataclass(frozen=True)
class WifiCellHeatmap:
    """Figure 5 data and the §3.3.1 user-type fractions."""

    year: int
    cell_mb: np.ndarray
    wifi_mb: np.ndarray
    histogram: np.ndarray
    log_edges: np.ndarray
    cellular_intensive_fraction: float
    wifi_intensive_fraction: float
    mixed_fraction: float
    mixed_above_diagonal_fraction: float

    @property
    def n_points(self) -> int:
        return len(self.cell_mb)


def wifi_cell_heatmap(
    data: DatasetOrContext,
    bins: int = 60,
    log_range: Tuple[float, float] = (-2.0, 3.0),
) -> WifiCellHeatmap:
    """Build the per-user-day heat map for one campaign."""
    if bins < 2:
        raise AnalysisError("need at least 2 bins")
    ctx = AnalysisContext.of(data)
    cell = ctx.daily_matrix("cell", "rx").ravel() / 1e6
    wifi = ctx.daily_matrix("wifi", "rx").ravel() / 1e6
    total = ctx.daily_matrix("all", "rx").ravel() / 1e6
    valid = total >= MIN_DAILY_VOLUME_MB
    cell, wifi = cell[valid], wifi[valid]
    if cell.size == 0:
        raise AnalysisError("no valid device-days")

    cell_used = cell > INTENSIVE_FLOOR_MB
    wifi_used = wifi > INTENSIVE_FLOOR_MB
    cellular_intensive = cell_used & ~wifi_used
    wifi_intensive = wifi_used & ~cell_used
    mixed = cell_used & wifi_used
    n = len(cell)

    above = wifi[mixed] > cell[mixed]
    mixed_count = int(mixed.sum())

    log_edges = np.linspace(log_range[0], log_range[1], bins + 1)
    clipped_cell = np.clip(cell, 10 ** log_range[0], 10 ** log_range[1])
    clipped_wifi = np.clip(wifi, 10 ** log_range[0], 10 ** log_range[1])
    histogram, _, _ = np.histogram2d(
        np.log10(clipped_cell[mixed]),
        np.log10(clipped_wifi[mixed]),
        bins=[log_edges, log_edges],
    )

    return WifiCellHeatmap(
        year=ctx.dataset().year,
        cell_mb=cell,
        wifi_mb=wifi,
        histogram=histogram,
        log_edges=log_edges,
        cellular_intensive_fraction=float(cellular_intensive.sum() / n),
        wifi_intensive_fraction=float(wifi_intensive.sum() / n),
        mixed_fraction=float(mixed_count / n),
        mixed_above_diagonal_fraction=(
            float(above.sum() / mixed_count) if mixed_count else 0.0
        ),
    )
