"""The memoized derived-artifact layer every figure/table sits on.

~19 figures and 9 tables all derive from the same handful of per-campaign
intermediates: the cleaned dataset, (device, day) traffic matrices, hourly
series, the sorted (device, t) join indexes from :mod:`repro.traces.query`,
per-day user classes and the AP classification. :class:`AnalysisContext`
computes each of those exactly once per campaign and hands out the cached
value everywhere else, with per-artifact instrumentation (hits, misses,
compute seconds, cached bytes) exposed as a :class:`CacheStats` report.

Every analysis entry point accepts either a plain
:class:`~repro.traces.dataset.CampaignDataset` or an ``AnalysisContext``
through :meth:`AnalysisContext.of`, so callers that hold a context share
its memo while one-off calls keep working unchanged. Cached numpy arrays
are returned read-only (``setflags(write=False)``): a consumer that tries
to mutate a shared matrix raises instead of silently corrupting every
later reader. Cached artifacts are pure functions of the source dataset,
so the cached and uncached paths are bit-identical (pinned by
``tests/test_analysis_context.py``).

Layering: this module may call :func:`clean_for_main_analysis`,
:func:`classify_user_days` and :func:`classify_aps`; the rest of
``repro.analysis`` must go through the context (enforced by
``tests/test_layering.py``).
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field, fields as _dataclass_fields, is_dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.errors import AnalysisError
from repro.obs.span import get_tracer
from repro.traces.cleaning import clean_for_main_analysis
from repro.traces.dataset import CampaignDataset
from repro.traces.query import SlotIndex, association_index, geo_cell_index

__all__ = ["AnalysisContext", "ArtifactStats", "CacheStats", "DatasetOrContext"]

#: Process-wide contexts over on-disk campaign stores, keyed by resolved
#: store path. Each entry remembers the store *fingerprint* it was built
#: from: reopening an unchanged store shares the memoized artifacts, while
#: a rewritten store (new fingerprint) transparently gets a fresh context —
#: cached artifacts can never outlive the bytes they were derived from.
_STORE_CONTEXTS: Dict[str, Tuple[str, "AnalysisContext"]] = {}


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------

@dataclass
class ArtifactStats:
    """Counters for one artifact family (e.g. all ``daily_matrix`` keys)."""

    artifact: str
    hits: int = 0
    misses: int = 0
    compute_seconds: float = 0.0
    cached_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.requests if self.requests else 0.0


class CacheStats:
    """Per-artifact cache instrumentation for one :class:`AnalysisContext`."""

    def __init__(self) -> None:
        self._by_artifact: Dict[str, ArtifactStats] = {}

    def _entry(self, artifact: str) -> ArtifactStats:
        if artifact not in self._by_artifact:
            self._by_artifact[artifact] = ArtifactStats(artifact)
        return self._by_artifact[artifact]

    def record_hit(self, artifact: str) -> None:
        self._entry(artifact).hits += 1

    def record_miss(self, artifact: str, seconds: float, nbytes: int) -> None:
        entry = self._entry(artifact)
        entry.misses += 1
        entry.compute_seconds += seconds
        entry.cached_bytes += nbytes

    def artifact(self, name: str) -> ArtifactStats:
        """Counters for one artifact family (zeros if never requested)."""
        return self._by_artifact.get(name, ArtifactStats(name))

    def per_artifact(self) -> List[ArtifactStats]:
        return [self._by_artifact[k] for k in sorted(self._by_artifact)]

    @property
    def hits(self) -> int:
        return sum(s.hits for s in self._by_artifact.values())

    @property
    def misses(self) -> int:
        return sum(s.misses for s in self._by_artifact.values())

    @property
    def compute_seconds(self) -> float:
        return sum(s.compute_seconds for s in self._by_artifact.values())

    @property
    def cached_bytes(self) -> int:
        return sum(s.cached_bytes for s in self._by_artifact.values())

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        return {
            s.artifact: {
                "hits": s.hits,
                "misses": s.misses,
                "compute_seconds": round(s.compute_seconds, 6),
                "cached_bytes": s.cached_bytes,
            }
            for s in self.per_artifact()
        }

    def render(self) -> str:
        """Aligned plain-text report, one row per artifact family."""
        header = ("artifact", "hits", "misses", "hit%", "compute_s", "cached")
        rows = [
            (s.artifact, str(s.hits), str(s.misses),
             f"{100 * s.hit_rate:.0f}%", f"{s.compute_seconds:.3f}",
             _fmt_bytes(s.cached_bytes))
            for s in self.per_artifact()
        ]
        rows.append(("total", str(self.hits), str(self.misses),
                     f"{100 * self.hits / max(self.hits + self.misses, 1):.0f}%",
                     f"{self.compute_seconds:.3f}",
                     _fmt_bytes(self.cached_bytes)))
        widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
        lines = ["analysis cache", "-" * 14]
        lines.append("  ".join(c.ljust(w) for c, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def _fmt_bytes(n: int) -> str:
    if n >= 1 << 20:
        return f"{n / (1 << 20):.1f}MB"
    if n >= 1 << 10:
        return f"{n / (1 << 10):.1f}kB"
    return f"{n}B"


def _cached_nbytes(value: object) -> int:
    """Approximate retained size of a cached artifact (arrays dominate)."""
    if isinstance(value, np.ndarray):
        return int(value.nbytes)
    if isinstance(value, SlotIndex):
        return int(value.keys.nbytes) + int(value.order.nbytes)
    if isinstance(value, (tuple, list, set, frozenset)):
        return sum(_cached_nbytes(v) for v in value)
    if isinstance(value, dict):
        return sum(_cached_nbytes(k) + _cached_nbytes(v) for k, v in value.items())
    if is_dataclass(value) and not isinstance(value, type):
        return sum(
            _cached_nbytes(getattr(value, f.name, None))
            for f in _dataclass_fields(value)
        )
    if isinstance(value, (bool, int, float, str, bytes)):
        return sys.getsizeof(value)
    return 0


# ----------------------------------------------------------------------
# Per-campaign memo
# ----------------------------------------------------------------------

class _CampaignState:
    """One campaign's source dataset plus its memoized artifacts."""

    __slots__ = ("raw", "raw_is_analysis", "artifacts")

    def __init__(self, raw: CampaignDataset, raw_is_analysis: bool) -> None:
        self.raw = raw
        #: True when the caller handed us the dataset to analyze verbatim
        #: (``AnalysisContext.of(dataset)``); False when the raw capture
        #: still needs :func:`clean_for_main_analysis` (study campaigns).
        self.raw_is_analysis = raw_is_analysis
        self.artifacts: Dict[tuple, object] = {}


DatasetOrContext = Union[CampaignDataset, "AnalysisContext"]


class AnalysisContext:
    """Memoized derived artifacts for one or more campaigns.

    Construct from a :class:`~repro.simulation.study.Study` (or any object
    with ``campaigns`` and ``dataset(year)``) for the multi-campaign
    reporting path — per-campaign artifacts are then derived from the
    *cleaned* dataset, like the old ``AnalysisCache``. Construct via
    :meth:`of` from a single :class:`CampaignDataset` for the analysis
    path — the dataset is analyzed verbatim (no implicit cleaning), which
    keeps ``fn(dataset)`` and ``fn(AnalysisContext.of(dataset))``
    bit-identical.
    """

    def __init__(self, source: object) -> None:
        self.study = None
        self._stats = CacheStats()
        self._focus: Optional[int] = None
        if isinstance(source, CampaignDataset):
            self._states = {source.year: _CampaignState(source, True)}
            self._focus = source.year
        elif isinstance(source, dict):
            if not source:
                raise AnalysisError("no campaign datasets to analyze")
            self._states = {
                int(year): _CampaignState(dataset, False)
                for year, dataset in source.items()
            }
        elif hasattr(source, "campaigns") and hasattr(source, "dataset"):
            if not source.campaigns:
                raise AnalysisError("study has not been run")
            self.study = source
            self._states = {
                year: _CampaignState(source.dataset(year), False)
                for year in sorted(source.campaigns)
            }
        else:
            raise AnalysisError(
                f"cannot build an AnalysisContext from "
                f"{type(source).__name__}; expected a Study, a "
                f"CampaignDataset or a {{year: dataset}} mapping"
            )

    @classmethod
    def of(cls, data: DatasetOrContext) -> "AnalysisContext":
        """Coerce an analysis-function argument to a context.

        An existing context is returned as-is (shared memo); a dataset
        gets a fresh single-campaign context over it, verbatim.
        """
        if isinstance(data, AnalysisContext):
            return data
        if isinstance(data, CampaignDataset):
            return cls(data)
        raise AnalysisError(
            f"expected a CampaignDataset or AnalysisContext, "
            f"got {type(data).__name__}"
        )

    @classmethod
    def for_store(cls, path: "str | Path") -> "AnalysisContext":
        """A context over a finalized on-disk campaign store.

        The dataset's columns stay memory-mapped — artifacts are computed
        from pages faulted in on demand, so analyzing a store never loads
        whole tables. Contexts are cached per store path and keyed by the
        store's content fingerprint: while the store is unchanged, every
        caller shares one memo; once it is rewritten (the fingerprint
        moves), a fresh context is built and the stale one dropped.
        """
        from repro.traces.store import CampaignStore

        resolved = str(Path(path).resolve())
        store = CampaignStore.open(resolved)
        fingerprint = store.fingerprint
        cached = _STORE_CONTEXTS.get(resolved)
        if cached is not None and cached[0] == fingerprint:
            return cached[1]
        context = cls(store.load_dataset())
        _STORE_CONTEXTS[resolved] = (fingerprint, context)
        return context

    # -- campaign selection ------------------------------------------------

    @property
    def years(self) -> tuple:
        return tuple(sorted(self._states))

    def campaign(self, year: int) -> "AnalysisContext":
        """A view of this context focused on one campaign.

        The view shares the memo and the :class:`CacheStats`, so analysis
        functions handed a view still populate (and benefit from) the
        parent's cache; its year-optional accessors resolve to ``year``.
        """
        year = self._resolve_year(year)
        view = object.__new__(AnalysisContext)
        view.study = self.study
        view._stats = self._stats
        view._states = self._states
        view._focus = year
        return view

    def _resolve_year(self, year: Optional[int]) -> int:
        if year is None:
            if self._focus is not None:
                return self._focus
            if len(self._states) == 1:
                return next(iter(self._states))
            raise AnalysisError(
                f"year is required for a multi-campaign context; "
                f"have {list(self.years)} — use .campaign(year)"
            )
        if year not in self._states:
            raise AnalysisError(
                f"no campaign for year {year}; have {list(self.years)}"
            )
        return year

    def _state(self, year: Optional[int]) -> _CampaignState:
        return self._states[self._resolve_year(year)]

    # -- memo core ---------------------------------------------------------

    @property
    def stats(self) -> CacheStats:
        return self._stats

    def _artifact(
        self, year: Optional[int], key: tuple, compute: Callable[[], object]
    ) -> object:
        state = self._state(year)
        if key in state.artifacts:
            self._stats.record_hit(key[0])
            return state.artifacts[key]
        # A memo miss is a run stage: spanned under artifact.<family> so a
        # --telemetry manifest shows compute time per artifact next to the
        # engine stages (no-op tracer by default — see repro.obs.span).
        with get_tracer().span(f"artifact.{key[0]}"):
            start = time.perf_counter()
            value = compute()
            elapsed = time.perf_counter() - start
        state.artifacts[key] = value
        self._stats.record_miss(key[0], elapsed, _cached_nbytes(value))
        return value

    # -- artifacts ---------------------------------------------------------

    def raw(self, year: Optional[int] = None) -> CampaignDataset:
        """The source dataset exactly as captured (never cleaned)."""
        return self._state(year).raw

    def clean(self, year: Optional[int] = None) -> CampaignDataset:
        """The campaign after §2 cleaning (memoized)."""
        state = self._state(year)
        return self._artifact(
            year, ("clean",), lambda: clean_for_main_analysis(state.raw)
        )

    def dataset(self, year: Optional[int] = None) -> CampaignDataset:
        """The dataset analyses run on.

        For ``of(dataset)`` contexts this is the source verbatim; for
        study-backed contexts it is the cleaned campaign.
        """
        state = self._state(year)
        if state.raw_is_analysis:
            return state.raw
        return self.clean(year)

    def daily_matrix(
        self, kind: str = "all", direction: str = "rx",
        year: Optional[int] = None,
    ) -> np.ndarray:
        """Memoized read-only (n_devices, n_days) byte matrix."""
        def compute() -> np.ndarray:
            matrix = self.dataset(year).daily_matrix(kind, direction)
            matrix.setflags(write=False)
            return matrix
        return self._artifact(year, ("daily_matrix", kind, direction), compute)

    def hourly_series(
        self, kind: str = "all", direction: str = "rx",
        year: Optional[int] = None,
    ) -> np.ndarray:
        """Memoized read-only per-campaign-hour byte totals."""
        def compute() -> np.ndarray:
            series = self.dataset(year).hourly_series(kind, direction)
            series.setflags(write=False)
            return series
        return self._artifact(year, ("hourly_series", kind, direction), compute)

    def geo_index(self, year: Optional[int] = None) -> SlotIndex:
        """Memoized sorted (device, t) index over the geolocation table."""
        def compute() -> SlotIndex:
            index = geo_cell_index(self.dataset(year))
            index.keys.setflags(write=False)
            index.order.setflags(write=False)
            return index
        return self._artifact(year, ("geo_index",), compute)

    def association_index(
        self, year: Optional[int] = None
    ) -> Tuple[SlotIndex, np.ndarray]:
        """Memoized (index, sorted ap ids) over associated wifi rows."""
        def compute() -> Tuple[SlotIndex, np.ndarray]:
            index, ap_sorted = association_index(self.dataset(year))
            index.keys.setflags(write=False)
            index.order.setflags(write=False)
            ap_sorted.setflags(write=False)
            return index, ap_sorted
        return self._artifact(year, ("association_index",), compute)

    def user_classes(self, year: Optional[int] = None):
        """Memoized §2 light/heavy per-(device, day) classification."""
        from repro.analysis.users import classify_user_days

        year = self._resolve_year(year)
        return self._artifact(
            year, ("user_classes",),
            lambda: classify_user_days(self.campaign(year)),
        )

    def classification(self, year: Optional[int] = None):
        """Memoized §3.4.1 AP classification."""
        from repro.analysis.ap_classification import classify_aps

        year = self._resolve_year(year)
        return self._artifact(
            year, ("classification",),
            lambda: classify_aps(self.campaign(year)),
        )
