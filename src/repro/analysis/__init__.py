"""The paper's analysis pipeline: one module per figure/table family."""

from repro.analysis.context import (
    AnalysisContext,
    CacheStats,
    DatasetOrContext,
)
from repro.analysis.users import UserDayClasses, classify_user_days
from repro.analysis.aggregate import (
    AggregateTraffic,
    aggregate_traffic,
    peak_hours,
    weekend_weekday_ratio,
    diurnal_peaks,
)
from repro.analysis.daily_volume import (
    DailyVolumeDistributions,
    daily_volume_distributions,
    VolumeGrowthTable,
    volume_growth_table,
)
from repro.analysis.heatmap import WifiCellHeatmap, wifi_cell_heatmap
from repro.analysis.ratios import WifiRatios, wifi_ratios
from repro.analysis.interface_state import (
    InterfaceStateRatios,
    interface_state_ratios,
    ios_android_gap,
)
from repro.analysis.ap_classification import APClassification, classify_aps
from repro.analysis.ap_density import (
    DensityMaps,
    association_density_maps,
    DetectedCoverage,
    detected_coverage,
)
from repro.analysis.location_traffic import LocationTraffic, location_traffic
from repro.analysis.association import (
    ApsPerDay,
    aps_per_day,
    HpoBreakdown,
    hpo_breakdown,
    AssociationDurations,
    association_durations,
)
from repro.analysis.spectrum import (
    BandFractions,
    band_fractions,
    ChannelDistributions,
    channel_distributions,
)
from repro.analysis.signal import RssiDistributions, rssi_distributions
from repro.analysis.availability import (
    PublicAvailability,
    public_availability,
    OffloadEstimate,
    offload_estimate,
)
from repro.analysis.app_breakdown import AppBreakdown, app_breakdown, infer_home_cells
from repro.analysis.software_update import UpdateTiming, update_timing
from repro.analysis.bandwidth_cap import (
    CapEffect,
    cap_effect,
    capped_users_without_home_ap,
)
from repro.analysis.implications import OffloadImpact, offload_impact
from repro.analysis.battery import BatteryDrain, battery_drain
from repro.analysis.shared_infra import SharedInfrastructure, shared_infrastructure
from repro.analysis.interference import InterferenceSummary, channel_interference
from repro.analysis.mobility_stats import MobilityStats, mobility_stats
from repro.analysis.survey_gap import SurveyGap, survey_gap
from repro.analysis.evolution import (
    CampaignOverview,
    campaign_overview,
    overview_table,
    yearly,
)

__all__ = [
    "AnalysisContext", "CacheStats", "DatasetOrContext",
    "UserDayClasses", "classify_user_days",
    "AggregateTraffic", "aggregate_traffic", "peak_hours",
    "weekend_weekday_ratio", "diurnal_peaks",
    "DailyVolumeDistributions", "daily_volume_distributions",
    "VolumeGrowthTable", "volume_growth_table",
    "WifiCellHeatmap", "wifi_cell_heatmap",
    "WifiRatios", "wifi_ratios",
    "InterfaceStateRatios", "interface_state_ratios", "ios_android_gap",
    "APClassification", "classify_aps",
    "DensityMaps", "association_density_maps",
    "DetectedCoverage", "detected_coverage",
    "LocationTraffic", "location_traffic",
    "ApsPerDay", "aps_per_day",
    "HpoBreakdown", "hpo_breakdown",
    "AssociationDurations", "association_durations",
    "BandFractions", "band_fractions",
    "ChannelDistributions", "channel_distributions",
    "RssiDistributions", "rssi_distributions",
    "PublicAvailability", "public_availability",
    "OffloadEstimate", "offload_estimate",
    "AppBreakdown", "app_breakdown", "infer_home_cells",
    "UpdateTiming", "update_timing",
    "CapEffect", "cap_effect", "capped_users_without_home_ap",
    "OffloadImpact", "offload_impact",
    "BatteryDrain", "battery_drain",
    "SharedInfrastructure", "shared_infrastructure",
    "InterferenceSummary", "channel_interference",
    "SurveyGap", "survey_gap",
    "MobilityStats", "mobility_stats",
    "CampaignOverview", "campaign_overview", "overview_table", "yearly",
]
