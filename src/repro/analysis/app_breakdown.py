"""Application-category traffic breakdown (Tables 6-7, §3.6).

Traffic per category is split into four contexts: cellular at home,
cellular elsewhere, WiFi at home, and WiFi on public networks. "Home" for
cellular is inferred the same way as home APs: the modal 5 km cell a device
occupies during the 22:00-06:00 window (§3.6 uses "the same classification
technique described in §3.4.1"). WiFi context comes from the associated AP's
class.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.analysis.users import UserDayClasses
from repro.apps.categories import CATEGORIES, category_name
from repro.constants import HOME_NIGHT_END_HOUR, HOME_NIGHT_START_HOUR
from repro.errors import AnalysisError
from repro.traces.dataset import CampaignDataset
from repro.traces.query import hour_of_day

CONTEXTS = ("cell_home", "cell_other", "wifi_home", "wifi_public")

_CONTEXT_LABELS = {
    "cell_home": "Cell home",
    "cell_other": "Cell other",
    "wifi_home": "WiFi home",
    "wifi_public": "WiFi public",
}


@dataclass(frozen=True)
class AppBreakdown:
    """Per-context category volume shares for one campaign."""

    year: int
    #: context -> category code -> share of that context's volume (0..1).
    shares_rx: Dict[str, Dict[int, float]]
    shares_tx: Dict[str, Dict[int, float]]

    def top(
        self, context: str, n: int = 5, direction: str = "rx"
    ) -> List[Tuple[str, float]]:
        """Top ``n`` categories as (name, percentage), Tables 6-7 style."""
        table = self.shares_rx if direction == "rx" else self.shares_tx
        try:
            shares = table[context]
        except KeyError:
            raise AnalysisError(
                f"unknown context {context!r}; have {CONTEXTS}"
            ) from None
        ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)[:n]
        return [(category_name(code), 100.0 * share) for code, share in ranked]

    @staticmethod
    def context_label(context: str) -> str:
        return _CONTEXT_LABELS[context]


def infer_home_cells(dataset: CampaignDataset) -> Dict[int, Tuple[int, int]]:
    """Modal night-time 5 km cell per device (the 'cellular home' anchor)."""
    geo = dataset.geo
    if len(geo) == 0:
        return {}
    hour = hour_of_day(geo.t)
    night = (hour >= HOME_NIGHT_START_HOUR) | (hour < HOME_NIGHT_END_HOUR)
    counts: Dict[int, Counter] = defaultdict(Counter)
    for d, c, r in zip(geo.device[night], geo.col[night], geo.row[night]):
        counts[int(d)][(int(c), int(r))] += 1
    return {d: counter.most_common(1)[0][0] for d, counter in counts.items()}


def app_breakdown(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
    classes: Optional[UserDayClasses] = None,
    subset: str = "all",
) -> AppBreakdown:
    """Tables 6-7: per-context category shares.

    ``subset`` may be ``"all"`` (default), ``"light"`` or ``"heavy"``, in
    which case ``classes`` must cover the dataset (§3.6 also reports the
    light-user view).
    """
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    apps = dataset.apps
    if len(apps) == 0:
        raise AnalysisError("dataset has no app-traffic records (Android only)")
    home_cells = infer_home_cells(dataset)

    if subset != "all":
        if classes is None:
            raise AnalysisError("subset breakdown requires UserDayClasses")
        mask_matrix = classes.light if subset == "light" else classes.heavy
        row_mask = mask_matrix[apps.device, apps.day]
    else:
        row_mask = np.ones(len(apps), dtype=bool)

    rx_totals: Dict[str, np.ndarray] = {
        ctx: np.zeros(len(CATEGORIES)) for ctx in CONTEXTS
    }
    tx_totals: Dict[str, np.ndarray] = {
        ctx: np.zeros(len(CATEGORIES)) for ctx in CONTEXTS
    }
    for i in np.flatnonzero(row_mask):
        device = int(apps.device[i])
        category = int(apps.category[i])
        if apps.cellular[i]:
            home = home_cells.get(device)
            cell = (int(apps.col[i]), int(apps.row[i]))
            ctx = "cell_home" if home is not None and cell == home else "cell_other"
        else:
            cls = classification.wifi_class_of(int(apps.ap_id[i]))
            if cls == "home":
                ctx = "wifi_home"
            elif cls == "public":
                ctx = "wifi_public"
            else:
                # Offices/open venues are grouped with public for Tables 6-7
                # ("WiFi public" = WiFi away from home in the paper's cuts).
                ctx = "wifi_public"
        rx_totals[ctx][category] += float(apps.rx[i])
        tx_totals[ctx][category] += float(apps.tx[i])

    def normalize(totals: Dict[str, np.ndarray]) -> Dict[str, Dict[int, float]]:
        out: Dict[str, Dict[int, float]] = {}
        for ctx, vec in totals.items():
            total = vec.sum()
            if total <= 0:
                out[ctx] = {}
                continue
            out[ctx] = {
                code: float(vec[code] / total)
                for code in range(len(CATEGORIES))
                if vec[code] > 0
            }
        return out

    return AppBreakdown(
        year=dataset.year,
        shares_rx=normalize(rx_totals),
        shares_tx=normalize(tx_totals),
    )
