"""Survey-vs-measurement consistency (§4.2, Table 8 vs §3.4).

The paper cross-checks the questionnaire against the traces: home-AP answers
are "consistent with our estimation", but public-WiFi answers over-report —
"users think they have more connectivity than they really do in public WiFi
networks". This analysis quantifies both gaps for a campaign: the share of
users *claiming* to connect at each location versus the share actually
observed associating there.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.population.survey import SurveyResponse
from repro.traces.records import WifiStateCode

LOCATION_CLASSES = {"home": ("home",), "office": ("office",), "public": ("public",)}


@dataclass(frozen=True)
class SurveyGap:
    """Claimed vs measured connectivity per location."""

    year: int
    claimed_pct: Dict[str, float]
    measured_pct: Dict[str, float]

    def gap(self, location: str) -> float:
        """Claimed minus measured, in percentage points."""
        try:
            return self.claimed_pct[location] - self.measured_pct[location]
        except KeyError:
            raise AnalysisError(f"unknown location {location!r}") from None

    def overreported(self, location: str, threshold_pp: float = 5.0) -> bool:
        """Whether users claim noticeably more than the traces show."""
        return self.gap(location) > threshold_pp


def survey_gap(
    data: DatasetOrContext,
    responses: List[SurveyResponse],
    classification: Optional[APClassification] = None,
) -> SurveyGap:
    """Compare Table 8 claims against measured association behaviour."""
    if not responses:
        raise AnalysisError("no survey responses")
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()

    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    devices_by_class: Dict[str, Set[int]] = {loc: set() for loc in LOCATION_CLASSES}
    device = wifi.device[assoc]
    ap_id = wifi.ap_id[assoc]
    pairs = np.unique(np.stack([device, ap_id], axis=1), axis=0)
    for dev, ap in pairs:
        cls = classification.wifi_class_of(int(ap))
        for loc, classes in LOCATION_CLASSES.items():
            if cls in classes:
                devices_by_class[loc].add(int(dev))

    n = dataset.n_devices
    measured = {
        loc: 100.0 * len(devs) / n for loc, devs in devices_by_class.items()
    }
    claimed = {}
    for loc in LOCATION_CLASSES:
        yes = sum(1 for r in responses if r.connected.get(loc) == "yes")
        claimed[loc] = 100.0 * yes / len(responses)
    return SurveyGap(year=dataset.year, claimed_pct=claimed, measured_pct=measured)
