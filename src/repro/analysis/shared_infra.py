"""Multi-provider shared-infrastructure APs (§4.3).

The paper suggests promoting APs that announce multiple provider ESSIDs from
one box, and confirms such APs exist in the dataset "by checking similar
BSSIDs assigned to different providers". This analysis does exactly that:
group observed public APs by BSSID hardware prefix (first five octets) and
report groups carrying more than one provider ESSID.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.net.identifiers import bssid_prefix, is_public_essid
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class SharedInfrastructure:
    """Observed multi-provider hardware groups."""

    year: int
    #: hardware prefix -> sorted list of (bssid, essid) pairs on that box.
    groups: Dict[str, List[Tuple[str, str]]]
    n_public_aps: int

    @property
    def n_shared_groups(self) -> int:
        return len(self.groups)

    @property
    def n_shared_aps(self) -> int:
        return sum(len(members) for members in self.groups.values())

    @property
    def shared_fraction(self) -> float:
        """Fraction of observed public APs that sit on shared hardware."""
        if self.n_public_aps == 0:
            return 0.0
        return self.n_shared_aps / self.n_public_aps

    def providers_per_group(self) -> List[int]:
        """Distinct ESSIDs per shared box (always >= 2)."""
        return sorted(
            len({essid for _, essid in members}) for members in self.groups.values()
        )


def shared_infrastructure(
    data: DatasetOrContext, include_sightings: bool = True
) -> SharedInfrastructure:
    """Find shared multi-provider hardware among observed public APs.

    Observed = associated, plus (optionally) scan-sighted APs; detection uses
    only data a passive analyst has: BSSIDs and ESSIDs in the directory.
    """
    dataset = AnalysisContext.of(data).dataset()
    observed = set()
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    observed.update(int(a) for a in np.unique(wifi.ap_id[assoc]))
    if include_sightings and len(dataset.sightings):
        observed.update(int(a) for a in np.unique(dataset.sightings.ap_id))
    if not observed:
        raise AnalysisError("no observed APs")

    by_prefix: Dict[str, List[Tuple[str, str]]] = defaultdict(list)
    n_public = 0
    for ap_id in sorted(observed):
        entry = dataset.ap_directory.get(ap_id)
        if entry is None or not is_public_essid(entry.essid):
            continue
        n_public += 1
        by_prefix[bssid_prefix(entry.bssid)].append((entry.bssid, entry.essid))

    groups = {
        prefix: sorted(members)
        for prefix, members in by_prefix.items()
        if len({essid for _, essid in members}) >= 2
    }
    return SharedInfrastructure(
        year=dataset.year, groups=groups, n_public_aps=n_public
    )
