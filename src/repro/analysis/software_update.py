"""iOS software-update timing (Figure 18, §3.7).

The 2015 campaign captured the iOS 8.2 rollout: WiFi-only, 565 MB, flash
crowd on release day with a weekend bump and long tail. Update delay is
compared between users with and without an inferred home AP; users without
home WiFi update late (median +3.5 days) or not at all (14%), and some go
out of their way to update on public or office WiFi.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.traces.query import device_day_of
from repro.traces.records import DeviceOS


@dataclass(frozen=True)
class UpdateTiming:
    """Figure 18 data plus the §3.7 headline statistics."""

    year: int
    release_day: int
    #: Days-since-release for every updated device.
    update_days: np.ndarray
    #: Same, restricted to devices with no inferred home AP.
    update_days_no_home: np.ndarray
    updated_fraction: float
    updated_fraction_no_home: float
    first_day_fraction: float
    median_delay_days: float
    median_delay_days_no_home: float
    #: Updated-without-home devices by the AP class used for the download.
    no_home_update_network: Dict[str, int]
    #: Size of the iOS panel the CDF denominators are taken over.
    n_ios: int

    def cdf_curve(self) -> "tuple[np.ndarray, np.ndarray]":
        """(days since release, cumulative fraction of the iOS panel)."""
        if self.update_days.size == 0:
            raise AnalysisError("no updates observed")
        days = np.sort(self.update_days)
        frac = np.arange(1, len(days) + 1) / max(self.n_ios, 1)
        return days, frac


def update_timing(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
) -> UpdateTiming:
    """Analyze the campaign's OS update events."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    updates = dataset.updates
    if len(updates) == 0:
        raise AnalysisError("campaign has no update events")
    if classification is None:
        classification = ctx.classification()

    ios_devices = {
        d.device_id for d in dataset.devices if d.os is DeviceOS.IOS
    }
    n_ios = len(ios_devices)
    if n_ios == 0:
        raise AnalysisError("no iOS devices in dataset")
    no_home_ios = {
        d for d in ios_devices if d not in classification.home_ap_of_device
    }

    update_day_of: Dict[int, int] = {}
    update_slot_of: Dict[int, int] = {}
    for device, t in zip(updates.device, updates.t):
        day = int(device_day_of(int(t)))
        if int(device) not in update_day_of or day < update_day_of[int(device)]:
            update_day_of[int(device)] = day
            update_slot_of[int(device)] = int(t)

    release_day = min(update_day_of.values())
    all_days = np.array(
        [d - release_day for dev, d in update_day_of.items() if dev in ios_devices]
    )
    no_home_days = np.array(
        [d - release_day for dev, d in update_day_of.items() if dev in no_home_ios]
    )

    network_used: Dict[str, int] = {}
    index, aps_sorted = ctx.association_index()
    lookup_devices = sorted(d for d in no_home_ios if d in update_slot_of)
    if lookup_devices:
        devs = np.array(lookup_devices, dtype=np.int64)
        slots = np.array(
            [update_slot_of[d] for d in lookup_devices], dtype=np.int64
        )
        pos, found = index.lookup(devs, slots)
        for i in range(len(lookup_devices)):
            if found[i]:
                cls = classification.wifi_class_of(int(aps_sorted[pos[i]]))
            else:
                cls = "unknown"
            network_used[cls] = network_used.get(cls, 0) + 1

    return UpdateTiming(
        year=dataset.year,
        release_day=release_day,
        update_days=all_days,
        update_days_no_home=no_home_days,
        updated_fraction=len(all_days) / n_ios,
        updated_fraction_no_home=(
            len(no_home_days) / len(no_home_ios) if no_home_ios else float("nan")
        ),
        first_day_fraction=float((all_days == 0).sum()) / n_ios,
        median_delay_days=float(np.median(all_days)) if all_days.size else float("nan"),
        median_delay_days_no_home=(
            float(np.median(no_home_days)) if no_home_days.size else float("nan")
        ),
        no_home_update_network=network_used,
        n_ios=n_ios,
    )
