"""WiFi-traffic ratio and WiFi-user ratio (Figures 6-8, §3.3.2-§3.3.3).

- WiFi-traffic ratio: WiFi download volume / total download volume per
  one-hour bin.
- WiFi-user ratio: fraction of users associated with WiFi per bin.

Both are computed for the whole panel and for the light/heavy device-day
subsets (classification is per day, so a device contributes to a subset only
on days it belongs to it).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.analysis.users import UserDayClasses
from repro.errors import AnalysisError
from repro.stats.timeseries import HourlySeries
from repro.traces.query import device_day_of, hour_of
from repro.traces.records import IfaceKind, WifiStateCode


@dataclass(frozen=True)
class RatioSeries:
    """Per-hour ratio series plus its campaign mean."""

    hourly: HourlySeries
    mean: float

    def folded_week(self) -> np.ndarray:
        return self.hourly.fold_week()


@dataclass(frozen=True)
class WifiRatios:
    """All the Figure 6-8 series for one campaign."""

    year: int
    traffic_ratio: Dict[str, RatioSeries]
    user_ratio: Dict[str, RatioSeries]

    def traffic(self, subset: str = "all") -> RatioSeries:
        return self.traffic_ratio[subset]

    def users(self, subset: str = "all") -> RatioSeries:
        return self.user_ratio[subset]


def wifi_ratios(
    data: DatasetOrContext,
    classes: Optional[UserDayClasses] = None,
) -> WifiRatios:
    """Compute WiFi-traffic and WiFi-user ratios for all/light/heavy."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classes is None:
        classes = ctx.user_classes()
    start_weekday = dataset.axis.start.weekday()
    n_hours = dataset.n_days * 24

    traffic = dataset.traffic
    t_hour = hour_of(traffic.t)
    t_day = device_day_of(traffic.t)
    is_wifi = traffic.iface == int(IfaceKind.WIFI)
    rx = traffic.rx

    wifi_tab = dataset.wifi
    assoc = wifi_tab.state == int(WifiStateCode.ASSOCIATED)
    a_dev = wifi_tab.device[assoc]
    a_hour = hour_of(wifi_tab.t[assoc])
    a_day = device_day_of(wifi_tab.t[assoc])

    subsets = {
        "all": classes.valid,
        "light": classes.light,
        "heavy": classes.heavy,
    }
    traffic_ratio = {}
    user_ratio = {}
    for name, mask in subsets.items():
        in_subset = mask[traffic.device, t_day]
        wifi_sum = np.zeros(n_hours)
        total_sum = np.zeros(n_hours)
        sel = in_subset
        np.add.at(total_sum, t_hour[sel], rx[sel])
        sel_w = in_subset & is_wifi
        np.add.at(wifi_sum, t_hour[sel_w], rx[sel_w])
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = wifi_sum / total_sum
        ratio[total_sum == 0] = np.nan
        traffic_ratio[name] = _ratio_series(ratio, start_weekday)

        # User ratio: distinct associated devices per hour / subset size.
        a_in = mask[a_dev, a_day]
        pair = (
            a_dev[a_in].astype(np.int64) * n_hours + a_hour[a_in].astype(np.int64)
        )
        uniq = np.unique(pair)
        assoc_count = np.zeros(n_hours)
        np.add.at(assoc_count, (uniq % n_hours).astype(np.int64), 1.0)
        denominator = mask.sum(axis=0).astype(float)  # devices per day
        denom_hourly = np.repeat(denominator, 24)
        with np.errstate(invalid="ignore", divide="ignore"):
            uratio = assoc_count / denom_hourly
        uratio[denom_hourly == 0] = np.nan
        user_ratio[name] = _ratio_series(uratio, start_weekday)

    return WifiRatios(
        year=dataset.year, traffic_ratio=traffic_ratio, user_ratio=user_ratio
    )


def _ratio_series(values: np.ndarray, start_weekday: int) -> RatioSeries:
    finite = values[np.isfinite(values)]
    mean = float(finite.mean()) if finite.size else float("nan")
    return RatioSeries(hourly=HourlySeries(values, start_weekday), mean=mean)
