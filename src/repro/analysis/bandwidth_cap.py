"""Soft bandwidth cap effects (Figure 19, §3.8).

A device-day is *potentially capped* when the previous three days' cellular
download exceeds the 1 GB threshold. Figure 19 plots, for capped and other
device-days, the CDF of (today's cellular download) / (mean of the previous
three days); throttling pushes the capped curve left. The gap between the
two medians shrinks from 2014 to 2015 after the policy relaxation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import CAP_THRESHOLD_BYTES, CAP_WINDOW_DAYS
from repro.errors import AnalysisError
from repro.stats.distributions import Ecdf, ecdf


@dataclass(frozen=True)
class CapEffect:
    """Figure 19 curves and §3.8 statistics for one campaign."""

    year: int
    capped_ratio_cdf: Ecdf
    others_ratio_cdf: Ecdf
    potentially_capped_fraction: float
    #: Fraction of capped / other device-days below half of the 3-day mean.
    capped_below_half: float
    others_below_half: float

    def median_gap(self) -> float:
        """Difference of medians (others - capped) of the ratio CDFs."""
        return self.others_ratio_cdf.median() - self.capped_ratio_cdf.median()


def cap_effect(
    data: DatasetOrContext,
    threshold_bytes: float = float(CAP_THRESHOLD_BYTES),
    window_days: int = CAP_WINDOW_DAYS,
    min_window_mb: float = 1.0,
) -> CapEffect:
    """Detect potentially capped device-days and measure the throttle."""
    if window_days < 1:
        raise AnalysisError("window must be >= 1 day")
    ctx = AnalysisContext.of(data)
    cell = ctx.daily_matrix("cell", "rx")
    n_devices, n_days = cell.shape
    if n_days <= window_days:
        raise AnalysisError("campaign too short for the cap window")

    capped_ratios = []
    other_ratios = []
    n_capped_days = 0
    n_eval_days = 0
    for day in range(window_days, n_days):
        window = cell[:, day - window_days:day]
        window_sum = window.sum(axis=1)
        window_mean = window_sum / window_days
        today = cell[:, day]
        evaluable = window_mean > min_window_mb * 1e6
        n_eval_days += int(evaluable.sum())
        capped = evaluable & (window_sum > threshold_bytes)
        n_capped_days += int(capped.sum())
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = today / window_mean
        capped_ratios.append(ratio[capped])
        other_ratios.append(ratio[evaluable & ~capped])

    capped_all = np.concatenate(capped_ratios) if capped_ratios else np.array([])
    others_all = np.concatenate(other_ratios) if other_ratios else np.array([])
    if capped_all.size == 0 or others_all.size == 0:
        raise AnalysisError("not enough capped/other device-days to compare")
    return CapEffect(
        year=ctx.dataset().year,
        capped_ratio_cdf=ecdf(capped_all),
        others_ratio_cdf=ecdf(others_all),
        potentially_capped_fraction=n_capped_days / max(n_eval_days, 1),
        capped_below_half=float((capped_all < 0.5).mean()),
        others_below_half=float((others_all < 0.5).mean()),
    )


def capped_users_without_home_ap(
    data: DatasetOrContext,
    home_devices: set,
    threshold_bytes: float = float(CAP_THRESHOLD_BYTES),
    window_days: int = CAP_WINDOW_DAYS,
) -> Optional[float]:
    """§3.8: fraction of ever-capped devices lacking an inferred home AP."""
    cell = AnalysisContext.of(data).daily_matrix("cell", "rx")
    n_days = cell.shape[1]
    ever_capped = np.zeros(cell.shape[0], dtype=bool)
    for day in range(window_days, n_days):
        window_sum = cell[:, day - window_days:day].sum(axis=1)
        ever_capped |= window_sum > threshold_bytes
    capped_ids = np.flatnonzero(ever_capped)
    if capped_ids.size == 0:
        return None
    without_home = sum(1 for d in capped_ids if int(d) not in home_devices)
    return without_home / capped_ids.size
