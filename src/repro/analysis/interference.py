"""Cross-channel interference among neighbouring 2.4 GHz APs (§3.4.5, §4.3).

Two 2.4 GHz BSSIDs closer than five channels apart interfere. The paper
observes that public deployments plan around 1/6/11 while 2013 home routers
pile onto channel 1 — "potentially causing more channel interference" — and
that the situation improves by 2015. This analysis quantifies that: for each
5 km cell, take the observed 2.4 GHz APs of a class and compute the fraction
of AP pairs that interfere; report the device-weighted summary per class.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis.ap_classification import APClassification
from repro.analysis.ap_density import _lookup_cells
from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.errors import AnalysisError
from repro.radio.bands import Band
from repro.radio.channels import cross_channel_interference_fraction
from repro.traces.records import WifiStateCode


@dataclass(frozen=True)
class InterferenceSummary:
    """Per-class cross-channel interference statistics (co-channel excluded)."""

    year: int
    #: class -> mean over cells of the interfering-pair fraction.
    mean_fraction: Dict[str, float]
    #: class -> number of cells with >= 2 APs (the evaluable cells).
    evaluable_cells: Dict[str, int]
    #: class -> fraction of APs sitting on the 1/6/11 trio.
    trio_share: Dict[str, float]

    def fraction(self, ap_class: str) -> float:
        try:
            return self.mean_fraction[ap_class]
        except KeyError:
            raise AnalysisError(f"no interference data for {ap_class!r}") from None


def channel_interference(
    data: DatasetOrContext,
    classification: Optional[APClassification] = None,
    classes: Tuple[str, ...] = ("home", "public"),
) -> InterferenceSummary:
    """Compute neighbourhood interference for observed 2.4 GHz APs."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    if classification is None:
        classification = ctx.classification()
    wifi = dataset.wifi
    assoc = wifi.state == int(WifiStateCode.ASSOCIATED)
    if not assoc.any():
        raise AnalysisError("no associations in dataset")
    device = wifi.device[assoc].astype(np.int64)
    t = wifi.t[assoc].astype(np.int64)
    ap_id = wifi.ap_id[assoc].astype(np.int64)
    cols, rows, found = _lookup_cells(ctx, device, t)

    # AP -> the cell it was (first) observed in.
    ap_cell: Dict[int, Tuple[int, int]] = {}
    for i in np.flatnonzero(found):
        ap_cell.setdefault(int(ap_id[i]), (int(cols[i]), int(rows[i])))

    channels_by_class_cell: Dict[str, Dict[Tuple[int, int], List[int]]] = {
        cls: defaultdict(list) for cls in classes
    }
    seen: Set[int] = set()
    trio_counts = {cls: [0, 0] for cls in classes}  # [on trio, total]
    for ap, cell in ap_cell.items():
        if ap in seen:
            continue
        seen.add(ap)
        entry = dataset.ap_directory[ap]
        if entry.band is not Band.GHZ_2_4:
            continue
        cls = classification.wifi_class_of(ap)
        if cls not in channels_by_class_cell:
            continue
        channels_by_class_cell[cls][cell].append(entry.channel)
        trio_counts[cls][1] += 1
        if entry.channel in (1, 6, 11):
            trio_counts[cls][0] += 1

    mean_fraction = {}
    evaluable = {}
    trio_share = {}
    for cls in classes:
        fractions = [
            cross_channel_interference_fraction(chans)
            for chans in channels_by_class_cell[cls].values()
            if len(chans) >= 2
        ]
        evaluable[cls] = len(fractions)
        mean_fraction[cls] = float(np.mean(fractions)) if fractions else float("nan")
        on, total = trio_counts[cls]
        trio_share[cls] = on / total if total else float("nan")
    return InterferenceSummary(
        year=dataset.year,
        mean_fraction=mean_fraction,
        evaluable_cells=evaluable,
        trio_share=trio_share,
    )
