"""AP classification: home / public / office / mobile / other (§3.4.1).

The analysis identifies each AP a device associates with by its
(BSSID, ESSID) pair and classifies:

- **Home**: the most common pair a device connects to during at least 70% of
  its associated time between 22:00 and 06:00 of a day. FON community APs a
  user stays on around the clock are reclassified from public to home.
- **Public**: well-known provider ESSIDs (0000docomo, 0001softbank,
  eduroam, 7SPOT, ...).
- **Mobile**: an AP that travels with its user (observed from many distinct
  5 km cells).
- **Office**: mainly connected 11:00-17:00 on weekdays, and not classified
  home/public/mobile.
- **Other**: the rest (shops, hotels, friends' homes).

All classification reads only observable data (the wifi table, geolocation,
the AP directory); ground truth never enters.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Dict, Set, Tuple

import numpy as np

from repro.analysis.context import AnalysisContext, DatasetOrContext
from repro.constants import (
    HOME_NIGHT_END_HOUR,
    HOME_NIGHT_FRACTION,
    HOME_NIGHT_START_HOUR,
    OFFICE_END_HOUR,
    OFFICE_START_HOUR,
    SAMPLES_PER_HOUR,
)
from repro.errors import AnalysisError
from repro.net.identifiers import is_fon_public_essid, is_public_essid
from repro.traces.dataset import CampaignDataset
from repro.traces.query import device_day_of, hour_of_day
from repro.traces.records import WifiStateCode

#: Minimum associated night slots for a home-AP call (1 hour of evidence).
MIN_NIGHT_SLOTS = 6

#: An AP seen from this many distinct cells (by one device) is mobile.
MOBILE_CELL_THRESHOLD = 3

#: Office call: at least this fraction of an AP's association time must sit
#: inside the weekday 11:00-17:00 window.
OFFICE_WINDOW_FRACTION = 0.5


@dataclass
class APClassification:
    """Result of classifying every associated AP in a campaign."""

    ap_class: Dict[int, str] = field(default_factory=dict)
    home_ap_of_device: Dict[int, int] = field(default_factory=dict)
    #: Devices that had at least one WiFi association.
    wifi_devices: Set[int] = field(default_factory=set)

    def aps_of_class(self, name: str) -> Set[int]:
        return {ap for ap, cls in self.ap_class.items() if cls == name}

    def counts(self) -> Dict[str, int]:
        """Table 4 rows: home/public/other (office broken out) and total.

        The paper's "other" bucket contains offices and mobile APs; we report
        office separately like the parenthesized Table 4 row.
        """
        by_class = Counter(self.ap_class.values())
        other = by_class["other"] + by_class["office"] + by_class["mobile"]
        return {
            "home": by_class["home"],
            "public": by_class["public"],
            "other": other,
            "office": by_class["office"],
            "total": len(self.ap_class),
        }

    def fraction_devices_with_home_ap(self, n_devices: int) -> float:
        if n_devices <= 0:
            raise AnalysisError("n_devices must be positive")
        return len(self.home_ap_of_device) / n_devices

    def wifi_class_of(self, ap_id: int) -> str:
        """Class for an AP, collapsing mobile into 'other' (paper buckets)."""
        cls = self.ap_class.get(ap_id, "other")
        return "other" if cls == "mobile" else cls


def classify_aps(data: DatasetOrContext) -> APClassification:
    """Run the full §3.4.1 classification for one campaign."""
    ctx = AnalysisContext.of(data)
    dataset = ctx.dataset()
    result = APClassification()
    wifi = dataset.wifi
    assoc_mask = wifi.state == int(WifiStateCode.ASSOCIATED)
    if not assoc_mask.any():
        return result
    device = wifi.device[assoc_mask].astype(np.int64)
    t = wifi.t[assoc_mask].astype(np.int64)
    ap_id = wifi.ap_id[assoc_mask].astype(np.int64)
    result.wifi_devices = {int(d) for d in np.unique(device)}

    hour = hour_of_day(t)
    day = device_day_of(t)
    weekday = dataset.axis.weekday_of(t)

    home_of_device = _infer_home_aps(device, day, hour, ap_id)
    home_aps = set(home_of_device.values())
    fon_home_aps = _fon_reclassification(dataset, device, ap_id)
    home_aps |= fon_home_aps
    mobile_aps = _infer_mobile_aps(ctx, device, t, ap_id)

    in_window = (
        (hour >= OFFICE_START_HOUR) & (hour < OFFICE_END_HOUR) & (weekday < 5)
    )
    unique_aps, inverse = np.unique(ap_id, return_inverse=True)
    totals = np.bincount(inverse, minlength=len(unique_aps))
    window_counts = np.bincount(
        inverse, weights=in_window.astype(np.float64), minlength=len(unique_aps)
    )
    total_per_ap: Dict[int, int] = {
        int(a): int(n) for a, n in zip(unique_aps, totals)
    }
    office_window_per_ap: Dict[int, int] = defaultdict(int)
    office_window_per_ap.update(
        {int(a): int(n) for a, n in zip(unique_aps, window_counts)}
    )

    for a in total_per_ap:
        essid = dataset.ap_directory[a].essid
        if a in home_aps:
            result.ap_class[a] = "home"
        elif a in mobile_aps:
            result.ap_class[a] = "mobile"
        elif is_public_essid(essid) or (
            is_fon_public_essid(essid) and a not in fon_home_aps
        ):
            result.ap_class[a] = "public"
        elif (
            office_window_per_ap[a] / total_per_ap[a] >= OFFICE_WINDOW_FRACTION
            and total_per_ap[a] >= MIN_NIGHT_SLOTS
        ):
            result.ap_class[a] = "office"
        else:
            result.ap_class[a] = "other"

    result.home_ap_of_device = home_of_device
    # FON home APs belong to whoever used them at night; attribute them to
    # their heaviest nighttime user if that device has no home AP yet.
    for a in fon_home_aps:
        users = device[ap_id == a]
        if len(users) == 0:
            continue
        top_user = int(Counter(users.tolist()).most_common(1)[0][0])
        result.home_ap_of_device.setdefault(top_user, a)
    return result


def _infer_home_aps(
    device: np.ndarray, day: np.ndarray, hour: np.ndarray, ap_id: np.ndarray
) -> Dict[int, int]:
    """Per-device home AP from nightly top-pair voting (vectorized)."""
    night = (hour >= HOME_NIGHT_START_HOUR) | (hour < HOME_NIGHT_END_HOUR)
    if not night.any():
        return {}
    d = device[night]
    dy = day[night]
    a = ap_id[night]
    # Group rows by (device, day, ap) and count slots per group.
    triples = np.stack([d, dy, a], axis=1)
    groups, counts = np.unique(triples, axis=0, return_counts=True)
    # Per (device, day): total night slots and the dominant AP.
    night_totals: Dict[Tuple[int, int], int] = defaultdict(int)
    best: Dict[Tuple[int, int], Tuple[int, int]] = {}
    for (dev, day_idx, ap), count in zip(groups, counts):
        key = (int(dev), int(day_idx))
        night_totals[key] += int(count)
        if key not in best or count > best[key][0]:
            best[key] = (int(count), int(ap))
    votes: Dict[int, Counter] = defaultdict(Counter)
    for key, total in night_totals.items():
        if total < MIN_NIGHT_SLOTS:
            continue
        top_count, top_ap = best[key]
        if top_count / total >= HOME_NIGHT_FRACTION:
            votes[key[0]][top_ap] += 1
    return {d: int(counter.most_common(1)[0][0]) for d, counter in votes.items()}


def _fon_reclassification(
    dataset: CampaignDataset, device: np.ndarray, ap_id: np.ndarray
) -> Set[int]:
    """FON public ESSIDs used for >24 cumulative hours by one device are
    actually home routers (§3.4.1)."""
    fon_aps = {
        a for a, entry in dataset.ap_directory.items()
        if is_fon_public_essid(entry.essid)
    }
    if not fon_aps:
        return set()
    threshold_slots = 24 * SAMPLES_PER_HOUR
    fon_mask = np.isin(ap_id, list(fon_aps))
    if not fon_mask.any():
        return set()
    pairs = np.stack([device[fon_mask], ap_id[fon_mask]], axis=1)
    groups, counts = np.unique(pairs, axis=0, return_counts=True)
    return {
        int(ap) for (_d, ap), slots in zip(groups, counts)
        if slots >= threshold_slots
    }


def _infer_mobile_aps(
    ctx: AnalysisContext, device: np.ndarray, t: np.ndarray, ap_id: np.ndarray
) -> Set[int]:
    """APs observed (by one device) from many distinct 5 km cells."""
    dataset = ctx.dataset()
    geo = dataset.geo
    if len(geo) == 0:
        return set()
    # Fast (device, t) -> cell lookup via the shared sorted geo index.
    index = ctx.geo_index()
    pos, found = index.lookup(device, t)

    idx = np.flatnonzero(found)
    if idx.size == 0:
        return set()
    quads = np.stack(
        [
            device[idx], ap_id[idx],
            index.gather(geo.col, pos[idx]).astype(np.int64),
            index.gather(geo.row, pos[idx]).astype(np.int64),
        ],
        axis=1,
    )
    distinct = np.unique(quads, axis=0)
    # Count distinct cells per (device, ap) pair.
    pairs, cell_counts = np.unique(distinct[:, :2], axis=0, return_counts=True)
    return {
        int(ap) for (_d, ap), n_cells in zip(pairs, cell_counts)
        if n_cells >= MOBILE_CELL_THRESHOLD
    }
