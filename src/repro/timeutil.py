"""Campaign time axis: 10-minute slots over a 15-day window.

Every table in a :class:`~repro.traces.dataset.CampaignDataset` is indexed by
a slot number ``t`` counted from campaign start. These helpers convert slots
to wall-clock quantities (day index, hour of day, weekday) without carrying
datetime objects through the hot paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import date, datetime, timedelta

import numpy as np

from repro.constants import (
    CAMPAIGN_DAYS,
    SAMPLES_PER_DAY,
    SAMPLES_PER_HOUR,
    SAMPLE_PERIOD_MINUTES,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TimeAxis:
    """The slot grid of one campaign.

    ``start`` is the local midnight beginning the campaign (JST in the paper;
    timezone-naive here). Slot ``t`` covers
    ``[start + t*10min, start + (t+1)*10min)``.
    """

    start: date
    n_days: int = CAMPAIGN_DAYS

    def __post_init__(self) -> None:
        if self.n_days <= 0:
            raise ConfigurationError(f"n_days must be positive: {self.n_days}")

    @property
    def n_slots(self) -> int:
        """Total number of 10-minute slots in the campaign."""
        return self.n_days * SAMPLES_PER_DAY

    def slot_datetime(self, t: int) -> datetime:
        """Wall-clock start of slot ``t``."""
        self._check(t)
        return datetime(self.start.year, self.start.month, self.start.day) + timedelta(
            minutes=t * SAMPLE_PERIOD_MINUTES
        )

    def day_of(self, t) -> "np.ndarray | int":
        """Campaign-day index (0-based) for slot(s) ``t``."""
        return np.asarray(t) // SAMPLES_PER_DAY if _is_array(t) else int(t) // SAMPLES_PER_DAY

    def hour_of(self, t) -> "np.ndarray | int":
        """Hour of day (0-23) for slot(s) ``t``."""
        if _is_array(t):
            return (np.asarray(t) % SAMPLES_PER_DAY) // SAMPLES_PER_HOUR
        return (int(t) % SAMPLES_PER_DAY) // SAMPLES_PER_HOUR

    def weekday_of(self, t) -> "np.ndarray | int":
        """Weekday (Monday=0 .. Sunday=6) for slot(s) ``t``."""
        base = self.start.weekday()
        day = self.day_of(t)
        return (day + base) % 7

    def is_weekend(self, t) -> "np.ndarray | bool":
        """Whether slot(s) ``t`` fall on Saturday or Sunday."""
        wd = self.weekday_of(t)
        return wd >= 5

    def slot_of(self, day: int, hour: int, minute: int = 0) -> int:
        """Slot index for campaign ``day`` at ``hour:minute``."""
        if not 0 <= day < self.n_days:
            raise ConfigurationError(f"day out of range: {day}")
        if not 0 <= hour < 24:
            raise ConfigurationError(f"hour out of range: {hour}")
        if not 0 <= minute < 60:
            raise ConfigurationError(f"minute out of range: {minute}")
        return (
            day * SAMPLES_PER_DAY
            + hour * SAMPLES_PER_HOUR
            + minute // SAMPLE_PERIOD_MINUTES
        )

    def _check(self, t: int) -> None:
        if not 0 <= t < self.n_slots:
            raise ConfigurationError(
                f"slot {t} out of range [0, {self.n_slots})"
            )


def _is_array(x) -> bool:
    return isinstance(x, np.ndarray)
