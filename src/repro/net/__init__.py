"""Network substrate: identifiers, access points, cellular, WiFi primitives."""

from repro.net.identifiers import (
    Bssid,
    random_bssid,
    is_valid_bssid,
    PUBLIC_ESSIDS,
    FON_PUBLIC_ESSIDS,
    is_public_essid,
    is_fon_public_essid,
)
from repro.net.accesspoint import APType, AccessPoint
from repro.net.cellular import CellularTechnology, Carrier, CARRIERS, CellularNetwork
from repro.net.wifi import ScanResult, Association, WifiRadio, WifiState

__all__ = [
    "Bssid",
    "random_bssid",
    "is_valid_bssid",
    "PUBLIC_ESSIDS",
    "FON_PUBLIC_ESSIDS",
    "is_public_essid",
    "is_fon_public_essid",
    "APType",
    "AccessPoint",
    "CellularTechnology",
    "Carrier",
    "CARRIERS",
    "CellularNetwork",
    "ScanResult",
    "Association",
    "WifiRadio",
    "WifiState",
]
