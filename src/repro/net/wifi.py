"""WiFi device-side primitives: radio state, scanning, and association.

Mirrors what the measurement software can observe (§2): Android reports
non-associated (scanned) APs as well as the associated one when the interface
is on; iOS reports only the associated AP. The three Android interface states
of §3.3.4 — WiFi-user, WiFi-off, WiFi-available — map onto
:class:`WifiState`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.constants import STRONG_RSSI_DBM
from repro.geo.coords import Coordinate
from repro.net.accesspoint import AccessPoint


class WifiState(enum.Enum):
    """Device WiFi interface state (§3.3.4)."""

    OFF = "off"  # interface explicitly turned off
    AVAILABLE = "available"  # interface on, not associated
    ASSOCIATED = "associated"  # connected to an AP

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class ScanResult:
    """One AP as seen in a scan: identity plus observed RSSI."""

    ap: AccessPoint
    rssi_dbm: float

    @property
    def strong(self) -> bool:
        """Whether the signal is strong enough to be usable (§3.5)."""
        return self.rssi_dbm >= STRONG_RSSI_DBM


@dataclass(frozen=True)
class Association:
    """A device's current association to an AP."""

    ap: AccessPoint
    rssi_dbm: float


class WifiRadio:
    """Scanning and association decisions for one device.

    ``known_keys`` is the set of (BSSID, ESSID) pairs the device holds
    credentials for — a device only associates with configured networks,
    which is how "no configuration" users (Table 9) never offload even when
    APs are in range.
    """

    def __init__(self, known_keys: Optional[set] = None) -> None:
        self.known_keys = set(known_keys or ())

    def add_network(self, ap: AccessPoint) -> None:
        """Store credentials for ``ap``."""
        self.known_keys.add(ap.key)

    def forget_network(self, ap: AccessPoint) -> None:
        """Remove stored credentials for ``ap`` (no-op if absent)."""
        self.known_keys.discard(ap.key)

    def scan(
        self,
        location: Coordinate,
        aps: Sequence[AccessPoint],
        rng: np.random.Generator,
    ) -> List[ScanResult]:
        """Return all APs audible from ``location`` with sampled RSSI."""
        results = []
        for ap in aps:
            distance_m = location.distance_km(ap.location) * 1000.0
            if not ap.in_coverage(distance_m):
                continue
            results.append(ScanResult(ap, ap.rssi_at(distance_m, rng)))
        results.sort(key=lambda r: r.rssi_dbm, reverse=True)
        return results

    def select(self, scan: Sequence[ScanResult]) -> Optional[Association]:
        """Associate with the strongest known, usable network (or nothing)."""
        for result in scan:
            if result.ap.key in self.known_keys and result.strong:
                return Association(result.ap, result.rssi_dbm)
        return None
