"""Cellular substrate: radio technologies, carriers, and throughput.

The study spans the Japanese 3G -> LTE transition: LTE carries 25% of
cellular traffic in 2013 and 80% by 2015 (Table 1). Most users are on a flat
rate with a soft bandwidth cap (§1), which :mod:`repro.simulation.cap`
enforces on top of this substrate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError


class CellularTechnology(enum.Enum):
    """Cellular radio access technology."""

    THREE_G = "3G"
    LTE = "LTE"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Carrier:
    """A cellular provider with its market share and LTE rollout speed.

    ``market_share`` values across :data:`CARRIERS` sum to 1; recruitment
    samples carriers in proportion (§2: selection "in consideration of the
    market share of major Japanese cellular providers").
    """

    name: str
    market_share: float
    lte_rollout_bias: float = 0.0

    def __post_init__(self) -> None:
        if not 0.0 < self.market_share <= 1.0:
            raise ConfigurationError(
                f"market share must be in (0, 1]: {self.market_share}"
            )


#: Approximate 2013-2015 Japanese market shares of the three major carriers.
CARRIERS: Tuple[Carrier, ...] = (
    Carrier("docomo", 0.45, lte_rollout_bias=0.02),
    Carrier("au", 0.29, lte_rollout_bias=0.0),
    Carrier("softbank", 0.26, lte_rollout_bias=-0.02),
)


def pick_carrier(rng: np.random.Generator) -> Carrier:
    """Sample a carrier proportionally to market share."""
    shares = np.array([c.market_share for c in CARRIERS])
    idx = int(rng.choice(len(CARRIERS), p=shares / shares.sum()))
    return CARRIERS[idx]


@dataclass(frozen=True)
class CellularNetwork:
    """Throughput model for one device's cellular attachment.

    Nominal achievable throughputs are generous relative to demand — in this
    study the binding constraint is the demand model and the soft cap, not
    link capacity — but 3G vs LTE still matters for cap recovery and the
    "LTE is enough" survey answers.
    """

    technology: CellularTechnology
    carrier: Carrier

    #: Achievable mean throughputs (bits/s) by technology.
    THROUGHPUT_BPS = {
        CellularTechnology.THREE_G: 3_000_000.0,
        CellularTechnology.LTE: 20_000_000.0,
    }

    def capacity_bytes(self, interval_s: float) -> float:
        """Maximum bytes deliverable in ``interval_s`` seconds."""
        if interval_s < 0:
            raise ConfigurationError(f"interval must be >= 0: {interval_s}")
        return self.THROUGHPUT_BPS[self.technology] * interval_s / 8.0


def assign_technology(
    lte_share: float, carrier: Carrier, rng: np.random.Generator
) -> CellularTechnology:
    """Assign a device's technology for a campaign year.

    ``lte_share`` is the campaign-wide target fraction of cellular traffic on
    LTE (Table 1); the carrier's rollout bias shifts individual probability.
    """
    if not 0.0 <= lte_share <= 1.0:
        raise ConfigurationError(f"lte_share must be in [0, 1]: {lte_share}")
    p = float(np.clip(lte_share + carrier.lte_rollout_bias, 0.0, 1.0))
    if rng.random() < p:
        return CellularTechnology.LTE
    return CellularTechnology.THREE_G
