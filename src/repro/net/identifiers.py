"""WiFi network identifiers: BSSIDs, ESSIDs, and public-provider names.

The analysis identifies each AP by its (BSSID, ESSID) pair — the MAC address
of the AP and its network name (§3.4.1) — and classifies public networks by
well-known provider ESSIDs (0000docomo, 0001softbank, eduroam, 7Spot,
Metro Free Wi-Fi, ...).
"""

from __future__ import annotations

import re
from typing import FrozenSet

import numpy as np

from repro.errors import SchemaError

Bssid = str

_BSSID_RE = re.compile(r"^([0-9a-f]{2}:){5}[0-9a-f]{2}$")

#: Well-known public/provider ESSIDs used for classification (§3.4.1). The
#: first three are named in the paper; the rest are the free/commercial
#: providers it cites as examples.
PUBLIC_ESSIDS: FrozenSet[str] = frozenset(
    {
        "0000docomo",
        "0001softbank",
        "eduroam",
        "7spot",
        "metro_free_wi-fi",
        "au_wi-fi",
        "wi2premium",
        "famima_wi-fi",
        "lawson_free_wi-fi",
        "japan_free_wifi",
    }
)

#: FON community ESSIDs: public names that, when used around the clock at a
#: residence, actually indicate a home router (§3.4.1 reclassifies these).
FON_PUBLIC_ESSIDS: FrozenSet[str] = frozenset({"fon_free_internet", "fon"})


def is_valid_bssid(bssid: str) -> bool:
    """Whether ``bssid`` is a well-formed lower-case colon-separated MAC."""
    return bool(_BSSID_RE.match(bssid))


def random_bssid(rng: np.random.Generator) -> Bssid:
    """Generate a random locally-administered unicast BSSID."""
    octets = rng.integers(0, 256, size=6, dtype=np.int64)
    # Locally administered (bit 1 set), unicast (bit 0 clear).
    first = (int(octets[0]) | 0x02) & 0xFE
    parts = [first] + [int(o) for o in octets[1:]]
    return ":".join(f"{o:02x}" for o in parts)


def normalize_essid(essid: str) -> str:
    """Canonical form used for classification (case/space-insensitive)."""
    return essid.strip().lower().replace(" ", "_")


def is_public_essid(essid: str) -> bool:
    """Whether ``essid`` is a well-known public-provider network name."""
    return normalize_essid(essid) in PUBLIC_ESSIDS


def is_fon_public_essid(essid: str) -> bool:
    """Whether ``essid`` is a FON community (public-at-home) network name."""
    return normalize_essid(essid) in FON_PUBLIC_ESSIDS


def bssid_prefix(bssid: str, octets: int = 5) -> str:
    """Leading ``octets`` of a BSSID (shared-hardware radios differ only in
    the trailing octet; §4.3 identifies multi-provider APs this way)."""
    parts = validate_bssid(bssid).split(":")
    if not 1 <= octets <= 6:
        raise SchemaError(f"octets must be 1..6: {octets}")
    return ":".join(parts[:octets])


def sibling_bssid(bssid: str, offset: int) -> Bssid:
    """A BSSID on the same hardware: last octet shifted by ``offset``."""
    parts = validate_bssid(bssid).split(":")
    last = (int(parts[-1], 16) + offset) % 256
    return ":".join(parts[:-1] + [f"{last:02x}"])


def validate_bssid(bssid: str) -> Bssid:
    """Return ``bssid`` lower-cased, raising ``SchemaError`` if malformed."""
    low = bssid.lower()
    if not is_valid_bssid(low):
        raise SchemaError(f"malformed BSSID: {bssid!r}")
    return low
