"""Access-point model.

An :class:`AccessPoint` carries everything the radio environment needs to
present a network to a device: identifiers, band, channel, location, and an
RSSI model. ``ap_type`` is the *ground-truth* deployment category, which the
analysis never reads — analyses must infer home/public/office from behaviour
(§3.4.1); ground truth exists so tests can score the inference.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.geo.coords import Coordinate
from repro.net.identifiers import Bssid, validate_bssid
from repro.radio.bands import Band
from repro.radio.channels import CHANNELS_24GHZ, CHANNELS_5GHZ
from repro.radio.pathloss import RssiModel


class APType(enum.Enum):
    """Ground-truth deployment category of an AP."""

    HOME = "home"
    PUBLIC = "public"
    OFFICE = "office"
    MOBILE = "mobile"
    OPEN = "open"  # shops / hotels, classified as "other" by the paper

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class AccessPoint:
    """One WiFi access point in the simulated environment."""

    ap_id: int
    bssid: Bssid
    essid: str
    band: Band
    channel: int
    location: Coordinate
    ap_type: APType
    rssi_model: RssiModel = field(default_factory=RssiModel, repr=False)
    coverage_m: float = 50.0

    def __post_init__(self) -> None:
        object.__setattr__(self, "bssid", validate_bssid(self.bssid))
        valid = CHANNELS_24GHZ if self.band is Band.GHZ_2_4 else CHANNELS_5GHZ
        if self.channel not in valid:
            raise ConfigurationError(
                f"channel {self.channel} invalid for band {self.band}"
            )
        if self.coverage_m <= 0:
            raise ConfigurationError(f"coverage must be > 0: {self.coverage_m}")

    @property
    def key(self) -> tuple[Bssid, str]:
        """The (BSSID, ESSID) pair the analysis uses as the AP identity."""
        return (self.bssid, self.essid)

    def rssi_at(self, distance_m: float, rng: Optional[np.random.Generator] = None) -> float:
        """RSSI observed at ``distance_m``; shadowed when ``rng`` is given."""
        if rng is None:
            return self.rssi_model.mean_rssi(distance_m)
        return self.rssi_model.sample(distance_m, rng)

    def in_coverage(self, distance_m: float) -> bool:
        """Whether a device at ``distance_m`` can hear this AP at all."""
        return distance_m <= self.coverage_m
