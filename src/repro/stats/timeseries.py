"""Time-series helpers: hourly binning, Mbps conversion, weekly profiles.

The paper's traffic figures (Figures 2, 11) plot aggregate volume in Mbps per
time-of-week; the ratio figures (Figures 6-8) plot per-hour-of-week means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import AnalysisError

SECONDS_PER_HOUR = 3600.0
HOURS_PER_WEEK = 7 * 24


@dataclass(frozen=True)
class HourlySeries:
    """A per-hour series over a campaign, with its weekday alignment.

    ``values[h]`` covers campaign hour ``h``; ``start_weekday`` is the
    weekday (Mon=0) of hour 0, so the series can be folded onto a
    Saturday-to-Saturday week like the paper's plots.
    """

    values: np.ndarray
    start_weekday: int

    def __post_init__(self) -> None:
        if not 0 <= self.start_weekday <= 6:
            raise AnalysisError(f"bad weekday: {self.start_weekday}")

    @property
    def n_hours(self) -> int:
        return len(self.values)

    def fold_week(self, week_start_weekday: int = 5) -> np.ndarray:
        """Mean value per hour-of-week, week starting at ``week_start_weekday``.

        Default 5 (Saturday) to match the paper's Sat->Sat x-axes. Hours with
        no coverage are NaN.
        """
        sums = np.zeros(HOURS_PER_WEEK)
        counts = np.zeros(HOURS_PER_WEEK)
        for h, v in enumerate(self.values):
            weekday = (self.start_weekday + h // 24) % 7
            hour_of_week = ((weekday - week_start_weekday) % 7) * 24 + h % 24
            sums[hour_of_week] += v
            counts[hour_of_week] += 1
        with np.errstate(invalid="ignore", divide="ignore"):
            out = sums / counts
        out[counts == 0] = np.nan
        return out


def bytes_to_mbps(byte_totals: np.ndarray, interval_s: float = SECONDS_PER_HOUR) -> np.ndarray:
    """Convert per-interval byte totals to megabits per second."""
    if interval_s <= 0:
        raise AnalysisError(f"interval must be positive: {interval_s}")
    return np.asarray(byte_totals, dtype=float) * 8.0 / interval_s / 1e6


def weekly_profile(series: HourlySeries, week_start_weekday: int = 5) -> np.ndarray:
    """Convenience wrapper over :meth:`HourlySeries.fold_week`."""
    return series.fold_week(week_start_weekday)


def hour_of_week_labels(week_start_weekday: int = 5) -> List[str]:
    """Labels like 'Sat 00:00' for each hour of the folded week."""
    names = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"]
    labels = []
    for hour in range(HOURS_PER_WEEK):
        weekday = (week_start_weekday + hour // 24) % 7
        labels.append(f"{names[weekday]} {hour % 24:02d}:00")
    return labels
