"""Empirical distribution helpers used by the CDF/CCDF/PDF figures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import AnalysisError


@dataclass(frozen=True)
class Ecdf:
    """An empirical CDF: sorted support values and cumulative probabilities.

    ``values[i]`` has cumulative probability ``probs[i]``; evaluation at an
    arbitrary point uses right-continuous step semantics.
    """

    values: np.ndarray
    probs: np.ndarray

    @property
    def n(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """P(X <= x)."""
        idx = np.searchsorted(self.values, x, side="right")
        if idx == 0:
            return 0.0
        return float(self.probs[idx - 1])

    def quantile(self, q: float) -> float:
        """Smallest value with cumulative probability >= ``q``."""
        if not 0.0 < q <= 1.0:
            raise AnalysisError(f"quantile must be in (0, 1]: {q}")
        idx = np.searchsorted(self.probs, q, side="left")
        idx = min(idx, len(self.values) - 1)
        return float(self.values[idx])

    def median(self) -> float:
        return self.quantile(0.5)


def ecdf(samples: np.ndarray) -> Ecdf:
    """Empirical CDF of ``samples`` (NaNs rejected, empty rejected)."""
    data = np.asarray(samples, dtype=float).ravel()
    if data.size == 0:
        raise AnalysisError("cannot build an ECDF from no samples")
    if np.isnan(data).any():
        raise AnalysisError("samples contain NaN")
    values = np.sort(data)
    probs = np.arange(1, len(values) + 1, dtype=float) / len(values)
    return Ecdf(values, probs)


def ccdf(samples: np.ndarray) -> Ecdf:
    """Complementary CDF: P(X > x) at each sorted sample value.

    Returned in the same container; ``probs`` are exceedance probabilities.
    """
    base = ecdf(samples)
    return Ecdf(base.values, 1.0 - base.probs)


def pdf_histogram(
    samples: np.ndarray,
    bins: "int | np.ndarray" = 50,
    range_: "Tuple[float, float] | None" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Probability-density histogram: returns (bin_centers, density)."""
    data = np.asarray(samples, dtype=float).ravel()
    if data.size == 0:
        raise AnalysisError("cannot build a PDF from no samples")
    density, edges = np.histogram(data, bins=bins, range=range_, density=True)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, density


def percentile_band_mask(
    samples: np.ndarray, low_pct: float, high_pct: float
) -> np.ndarray:
    """Boolean mask of samples in the [low_pct, high_pct) percentile band.

    Used for the paper's light-user definition (§2: 40th-60th percentile of
    daily download). The band is half-open so adjacent bands partition the
    population; the top band should use ``high_pct=100`` which is inclusive.
    """
    data = np.asarray(samples, dtype=float)
    if data.size == 0:
        return np.zeros(0, dtype=bool)
    if not 0.0 <= low_pct < high_pct <= 100.0:
        raise AnalysisError(f"bad percentile band: [{low_pct}, {high_pct})")
    lo = np.percentile(data, low_pct)
    hi = np.percentile(data, high_pct)
    if high_pct == 100.0:
        return (data >= lo) & (data <= hi)
    return (data >= lo) & (data < hi)
