"""Growth-rate statistics.

Table 3 reports annual growth rates (AGRs) "obtained by linear fit" over the
three yearly values. We follow that: fit ``v = a + b * year`` by least
squares and report ``b`` relative to the fitted first-year level.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.errors import AnalysisError


def linear_fit(x: Sequence[float], y: Sequence[float]) -> Tuple[float, float]:
    """Least-squares line ``y = intercept + slope * x``; returns (intercept, slope)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.size < 2:
        raise AnalysisError("linear fit needs >= 2 paired points")
    slope, intercept = np.polyfit(xa, ya, 1)
    return float(intercept), float(slope)


def annual_growth_rate(years: Sequence[int], values: Sequence[float]) -> float:
    """Annual growth rate from a linear fit in log space (0.48 = 48%/year).

    Table 3's AGR column is geometric: fitting ``log(v) = a + b*year`` and
    reporting ``exp(b) - 1`` reproduces the paper's numbers exactly (e.g.
    WiFi medians 9.2/24.3/50.7 MB -> 134%).
    """
    values_arr = np.asarray(values, dtype=float)
    if (values_arr <= 0).any():
        raise AnalysisError("AGR requires strictly positive values")
    _, slope = linear_fit(np.asarray(years, dtype=float), np.log(values_arr))
    return float(np.exp(slope) - 1.0)
