"""Statistical helpers: empirical distributions, growth rates, time series."""

from repro.stats.distributions import (
    Ecdf,
    ecdf,
    ccdf,
    pdf_histogram,
    percentile_band_mask,
)
from repro.stats.growth import annual_growth_rate, linear_fit
from repro.stats.timeseries import (
    HourlySeries,
    bytes_to_mbps,
    weekly_profile,
    hour_of_week_labels,
)

__all__ = [
    "Ecdf",
    "ecdf",
    "ccdf",
    "pdf_histogram",
    "percentile_band_mask",
    "annual_growth_rate",
    "linear_fit",
    "HourlySeries",
    "bytes_to_mbps",
    "weekly_profile",
    "hour_of_week_labels",
]
