"""Shared constants for the measurement study.

Values marked with a section reference (e.g. ``§3.8``) come directly from the
paper; everything else is a schema constant of the measurement software.
"""

from __future__ import annotations

#: Sampling period of the measurement agent (§2: "collects statistics every
#: 10 minutes").
SAMPLE_PERIOD_MINUTES = 10
SAMPLE_PERIOD_SECONDS = SAMPLE_PERIOD_MINUTES * 60

#: Samples per day and per campaign.
SAMPLES_PER_HOUR = 60 // SAMPLE_PERIOD_MINUTES
SAMPLES_PER_DAY = 24 * SAMPLES_PER_HOUR

#: Length of one measurement campaign (§1: "three, 15-day-long ...
#: measurements").
CAMPAIGN_DAYS = 15

#: Coarse geolocation precision reported by the agent (§2: "5km precision").
GEO_PRECISION_KM = 5.0

#: Daily download below this is dropped from per-day distributions (§3.2).
MIN_DAILY_VOLUME_MB = 0.1

#: Soft bandwidth cap: 3-day download threshold and throttled rate (§1, §3.8).
CAP_WINDOW_DAYS = 3
CAP_THRESHOLD_BYTES = 1 * 1000**3  # 1 GB over the previous three days
CAP_LIMIT_BPS = 128_000  # 128 kbps during peak hours once capped

#: RSSI threshold for a "strong" (usable) WiFi network (§3.4.4, §3.5).
STRONG_RSSI_DBM = -70.0

#: Size of the iOS 8.2 update captured in the 2015 campaign (§3.7).
IOS_UPDATE_BYTES = 565 * 1000**2

#: Home-AP inference: fraction of the night window that must be spent on the
#: same (BSSID, ESSID) pair (§3.4.1).
HOME_NIGHT_START_HOUR = 22
HOME_NIGHT_END_HOUR = 6
HOME_NIGHT_FRACTION = 0.70

#: Office-AP inference window (§3.4.1): mainly connected 11:00-17:00 weekdays.
OFFICE_START_HOUR = 11
OFFICE_END_HOUR = 17

#: Light users: daily download in the 40th-60th percentile band; heavy
#: hitters: top 5% (§2).
LIGHT_PCTL_LOW = 40.0
LIGHT_PCTL_HIGH = 60.0
HEAVY_PCTL = 95.0

BYTES_PER_MB = 1000**2
BYTES_PER_GB = 1000**3

#: Number of 2.4 GHz channels available in Japan (§3.4.5: 13 channels).
NUM_24GHZ_CHANNELS = 13

#: Minimum channel separation to avoid cross-channel interference (§3.4.5).
CHANNEL_SEPARATION = 5
