"""Daily schedules by occupation.

Each user-day becomes an array of location states, one per 10-minute slot.
Schedules reproduce the commute structure behind the paper's temporal
patterns: cellular peaks at 08:00 / 12:00 / 19-21:00 from public-transport
commutes, WiFi peaking 23:00-01:00 at home (§3.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.errors import ConfigurationError
from repro.population.demographics import Occupation


class LocationState(enum.IntEnum):
    """Where a user is during one slot."""

    HOME = 0
    COMMUTE = 1  # on public transport / at a station
    WORK = 2  # office, campus, or own business premises
    PUBLIC_VENUE = 3  # cafe, shop, metro-station concourse
    OUT = 4  # outdoors / errands without public WiFi context


DaySchedule = np.ndarray  # int8 array of LocationState codes, length 144


def _slot(hour: float) -> int:
    """Slot-of-day index for a fractional hour, clamped to the day."""
    # Pure-python clamp: this runs tens of thousands of times per shard
    # and scalar np.clip dominates schedule generation otherwise.
    slot = round(hour * SAMPLES_PER_HOUR)
    if slot < 0:
        return 0
    return slot if slot < SAMPLES_PER_DAY else SAMPLES_PER_DAY


def _fill(schedule: np.ndarray, start_h: float, end_h: float, state: LocationState) -> None:
    schedule[_slot(start_h):_slot(end_h)] = int(state)


@dataclass
class ScheduleGenerator:
    """Generates day schedules for one user.

    Per-user habits (commute hour, evening return, outing propensity) are
    drawn once at construction so days correlate the way real routines do;
    per-day jitter is applied on each call.
    """

    occupation: Occupation
    rng: np.random.Generator
    is_commuter: bool = True

    def __post_init__(self) -> None:
        rng = self.rng
        #: Half the self-owned run their business from home (home WiFi all day).
        self.works_from_home = (
            self.occupation is Occupation.SELF_OWNED and rng.random() < 0.5
        )
        self.leave_hour = float(np.clip(rng.normal(7.8, 0.6), 5.5, 10.5))
        self.commute_minutes = float(np.clip(rng.normal(55.0, 20.0), 15.0, 120.0))
        self.return_leave_hour = float(np.clip(rng.normal(18.3, 1.1), 16.0, 22.0))
        self.lunch_out_p = float(rng.beta(2.5, 2.0))
        self.evening_venue_p = float(rng.beta(2.0, 4.0))
        self.weekend_outing_p = float(rng.beta(2.5, 2.5))
        self.errand_p = float(rng.beta(2.0, 2.5))

    def day(self, weekday: int, rng: np.random.Generator) -> DaySchedule:
        """Schedule for one day. ``weekday``: Monday=0 .. Sunday=6."""
        if not 0 <= weekday <= 6:
            raise ConfigurationError(f"bad weekday {weekday}")
        weekend = weekday >= 5
        if self.occupation is Occupation.HOUSEWIFE:
            return self._home_based_day(weekend, rng)
        if self.occupation is Occupation.PART_TIMER:
            return self._shift_day(weekend, rng)
        if self.occupation is Occupation.SELF_OWNED:
            return self._local_work_day(weekend, rng)
        if self.occupation in (Occupation.OTHER,):
            if rng.random() < 0.5:
                return self._home_based_day(weekend, rng)
            return self._shift_day(weekend, rng)
        # Commuters: government/office/engineer/worker/professional/student.
        if weekend:
            return self._weekend_day(rng)
        return self._commuter_day(rng)

    # ------------------------------------------------------------------

    def _commuter_day(self, rng: np.random.Generator) -> DaySchedule:
        schedule = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        leave = self.leave_hour + rng.normal(0.0, 0.2)
        commute_h = self.commute_minutes / 60.0
        arrive = leave + commute_h
        _fill(schedule, leave, arrive, LocationState.COMMUTE)
        leave_work = self.return_leave_hour + rng.normal(0.0, 0.4)
        _fill(schedule, arrive, leave_work, LocationState.WORK)
        if rng.random() < self.lunch_out_p:
            lunch = 12.0 + rng.uniform(-0.3, 0.5)
            _fill(schedule, lunch, lunch + 0.7, LocationState.PUBLIC_VENUE)
        back_start = leave_work
        if rng.random() < self.evening_venue_p:
            venue_len = rng.uniform(0.5, 2.0)
            _fill(schedule, leave_work, leave_work + venue_len, LocationState.PUBLIC_VENUE)
            back_start = leave_work + venue_len
        _fill(schedule, back_start, min(back_start + commute_h, 23.9), LocationState.COMMUTE)
        return schedule

    def _weekend_day(self, rng: np.random.Generator) -> DaySchedule:
        schedule = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        if rng.random() < self.weekend_outing_p:
            start = rng.uniform(10.0, 15.0)
            length = rng.uniform(2.0, 6.0)
            out_state = (
                LocationState.PUBLIC_VENUE if rng.random() < 0.7 else LocationState.OUT
            )
            _fill(schedule, start, start + min(length, 23.9 - start), out_state)
            # Transit legs around the outing.
            _fill(schedule, start - 0.5, start, LocationState.COMMUTE)
            end = min(start + length, 23.4)
            _fill(schedule, end, end + 0.5, LocationState.COMMUTE)
        return schedule

    def _home_based_day(self, weekend: bool, rng: np.random.Generator) -> DaySchedule:
        schedule = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        if rng.random() < self.errand_p:
            start = rng.uniform(9.5, 16.0)
            length = rng.uniform(0.5, 2.5)
            state = LocationState.PUBLIC_VENUE if rng.random() < 0.6 else LocationState.OUT
            _fill(schedule, start, start + length, state)
        if weekend and rng.random() < self.weekend_outing_p * 0.7:
            start = rng.uniform(11.0, 15.0)
            _fill(schedule, start, start + rng.uniform(1.0, 4.0), LocationState.OUT)
        return schedule

    def _shift_day(self, weekend: bool, rng: np.random.Generator) -> DaySchedule:
        schedule = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        works_today = rng.random() < (0.5 if weekend else 0.7)
        if works_today:
            start = rng.uniform(8.0, 14.0)
            length = rng.uniform(4.0, 7.0)
            _fill(schedule, start - 0.5, start, LocationState.COMMUTE)
            _fill(schedule, start, start + length, LocationState.WORK)
            end = start + length
            _fill(schedule, end, min(end + 0.5, 23.9), LocationState.COMMUTE)
        elif rng.random() < self.errand_p:
            start = rng.uniform(10.0, 17.0)
            _fill(schedule, start, start + rng.uniform(1.0, 3.0), LocationState.OUT)
        return schedule

    def _local_work_day(self, weekend: bool, rng: np.random.Generator) -> DaySchedule:
        schedule = np.full(SAMPLES_PER_DAY, int(LocationState.HOME), dtype=np.int8)
        if not weekend or rng.random() < 0.5:
            start = 9.0 + rng.normal(0.0, 0.7)
            end = 18.0 + rng.normal(0.0, 1.0)
            if not self.works_from_home:
                _fill(schedule, start, end, LocationState.WORK)
            if rng.random() < self.lunch_out_p * 0.7:
                lunch = 12.0 + rng.uniform(-0.3, 0.5)
                _fill(schedule, lunch, lunch + 0.6, LocationState.PUBLIC_VENUE)
        return schedule
