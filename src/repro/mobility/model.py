"""Campaign-long mobility: states, coordinates, and activity weights.

:class:`MobilityModel` turns a user's profile into, for each slot of the
campaign: a location state, a coordinate (quantized later by the agent to
5 km cells), and an *activity weight* — the relative intensity of phone use
that drives the demand model's diurnal shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.constants import SAMPLES_PER_DAY, SAMPLES_PER_HOUR
from repro.geo.coords import Coordinate
from repro.mobility.schedule import DaySchedule, LocationState, ScheduleGenerator
from repro.population.profiles import UserProfile
from repro.timeutil import TimeAxis

#: Base activity level per hour of day (phone-use diurnal shape): low at
#: night, commute bumps at 8 and 19-21, lunch bump, late-evening peak.
_HOURLY_ACTIVITY = np.array(
    [
        0.25, 0.12, 0.07, 0.05, 0.05, 0.08,  # 00-05
        0.25, 0.60, 0.95, 0.60, 0.50, 0.55,  # 06-11
        0.90, 0.65, 0.55, 0.55, 0.60, 0.70,  # 12-17
        0.85, 1.00, 1.00, 0.95, 1.00, 0.75,  # 18-23
    ]
)

#: Activity multiplier per location state: commuting and venues are
#: high-engagement; working hours suppress personal phone use a little.
_STATE_ACTIVITY = {
    int(LocationState.HOME): 1.0,
    int(LocationState.COMMUTE): 1.5,
    int(LocationState.WORK): 0.55,
    int(LocationState.PUBLIC_VENUE): 1.3,
    int(LocationState.OUT): 0.8,
}


def activity_weights(
    day_states: DaySchedule, weekend: bool, rng: np.random.Generator
) -> np.ndarray:
    """Per-slot activity weights for one day (length 144, >= 0)."""
    hours = np.arange(SAMPLES_PER_DAY) // SAMPLES_PER_HOUR
    base = _HOURLY_ACTIVITY[hours].copy()
    if weekend:
        # Weekends: no commute spikes, flatter daytime, later mornings.
        base[6 * SAMPLES_PER_HOUR:9 * SAMPLES_PER_HOUR] *= 0.55
        base[9 * SAMPLES_PER_HOUR:18 * SAMPLES_PER_HOUR] *= 1.1
    state_mult = np.array([_STATE_ACTIVITY[int(s)] for s in day_states])
    noise = rng.gamma(3.0, 1.0 / 3.0, size=SAMPLES_PER_DAY)
    return base * state_mult * noise


@dataclass
class DayMobility:
    """One user-day: states, activity weights, and anchor coordinates."""

    states: DaySchedule
    activity: np.ndarray
    venue_point: Coordinate
    commute_point: Coordinate


class MobilityModel:
    """Generates per-day mobility for one user across a campaign."""

    def __init__(self, profile: UserProfile, axis: TimeAxis, rng: np.random.Generator) -> None:
        self.profile = profile
        self.axis = axis
        self.generator = ScheduleGenerator(
            occupation=profile.occupation,
            rng=rng,
            is_commuter=profile.is_commuter,
        )

    def day(self, day_index: int, rng: np.random.Generator) -> DayMobility:
        """Mobility for campaign day ``day_index``."""
        weekday = int(self.axis.weekday_of(day_index * SAMPLES_PER_DAY))
        weekend = weekday >= 5
        states = self.generator.day(weekday, rng)
        activity = activity_weights(states, weekend, rng)
        venue_point, commute_point = self._anchor_points(rng)
        return DayMobility(states, activity, venue_point, commute_point)

    def location_for(
        self, state: int, mobility: DayMobility
    ) -> Coordinate:
        """Coordinate for a state within a given day."""
        profile = self.profile
        if state == int(LocationState.HOME):
            return profile.home
        if state == int(LocationState.WORK):
            return profile.office if profile.office is not None else profile.home
        if state == int(LocationState.COMMUTE):
            return mobility.commute_point
        if state == int(LocationState.PUBLIC_VENUE):
            return mobility.venue_point
        return _jitter(profile.home, 2.0)

    def _anchor_points(self, rng: np.random.Generator) -> Tuple[Coordinate, Coordinate]:
        """Pick today's venue and commute waypoints."""
        profile = self.profile
        if profile.office is not None:
            frac = float(rng.uniform(0.3, 0.9))
            commute = _interpolate(profile.home, profile.office, frac)
            venue = _jitter(profile.office, 1.0) if rng.random() < 0.7 else (
                _jitter(profile.home, 3.0)
            )
        else:
            commute = _jitter(profile.home, 3.0)
            venue = _jitter(profile.home, 4.0)
        return venue, commute


def _interpolate(a: Coordinate, b: Coordinate, frac: float) -> Coordinate:
    return Coordinate(
        a.lat + (b.lat - a.lat) * frac,
        a.lon + (b.lon - a.lon) * frac,
    )


def _jitter(anchor: Coordinate, km: float) -> Coordinate:
    """Deterministic small offset (used where exactness is irrelevant)."""
    return Coordinate(
        float(np.clip(anchor.lat + km / 222.0, -89.0, 89.0)),
        float(np.clip(anchor.lon + km / 182.0, -179.0, 179.0)),
    )
