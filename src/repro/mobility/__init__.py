"""Mobility substrate: occupation-driven schedules and location states."""

from repro.mobility.schedule import (
    LocationState,
    ScheduleGenerator,
    DaySchedule,
)
from repro.mobility.model import activity_weights, MobilityModel

__all__ = [
    "LocationState",
    "ScheduleGenerator",
    "DaySchedule",
    "activity_weights",
    "MobilityModel",
]
